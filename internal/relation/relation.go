package relation

import (
	"fmt"
	"sort"
)

// Relation is an in-memory table: a schema plus a multiset of rows. When the
// schema declares a primary key the relation enforces key uniqueness and
// maintains a hash index from encoded key to row position, giving O(1)
// Get/Upsert/Delete — the operations the change-table maintenance strategy
// and the correspondence-subtract operator rely on.
type Relation struct {
	schema    Schema
	rows      []Row
	index     map[string]int // key -> position in rows; nil when no key
	secondary map[string]*secondaryIndex
	keyBuf    KeyBuf // scratch for mutation-path key encoding; not for readers

	// shared marks the rows/index/secondary storage as referenced by at
	// least one Snapshot. The next mutation detaches (copies) the storage
	// first, so published snapshots stay immutable — copy-on-write.
	shared bool
	// version counts storage generations: it is bumped every time the
	// relation detaches from a snapshot, so a snapshot's version
	// identifies the state it captured.
	version uint64
}

// New creates an empty relation with the given schema.
func New(schema Schema) *Relation {
	return NewSized(schema, 0)
}

// NewSized creates an empty relation pre-sized for about capacity rows,
// avoiding index rehashes during bulk loads (operator outputs).
func NewSized(schema Schema, capacity int) *Relation {
	r := &Relation{schema: schema}
	if capacity > 0 {
		r.rows = make([]Row, 0, capacity)
	}
	if schema.HasKey() {
		r.index = make(map[string]int, capacity)
	}
	return r
}

// Schema returns the relation's schema.
func (r *Relation) Schema() Schema { return r.schema }

// Len reports the number of rows.
func (r *Relation) Len() int { return len(r.rows) }

// Row returns the i-th row. The returned slice must not be modified.
func (r *Relation) Row(i int) Row { return r.rows[i] }

// Rows returns the underlying row slice. It must not be modified; use it for
// read-only scans.
func (r *Relation) Rows() []Row { return r.rows }

// Version identifies the storage generation of the relation's contents.
// Two relations created by Snapshot share a version until the live side
// mutates (which detaches it and bumps its version).
func (r *Relation) Version() uint64 { return r.version }

// Snapshot returns an immutable view of the relation's current contents.
// The snapshot shares storage with the receiver — taking one is O(1) — and
// the receiver detaches (copies rows and indexes) on its next mutation, so
// the snapshot keeps observing exactly the rows present now.
//
// Snapshot itself counts as a (bookkeeping) mutation of the receiver and
// must be serialized with writers; the returned relation is safe for any
// number of concurrent readers. Mutating a snapshot is possible (it
// detaches first) but defeats its purpose; treat it as read-only.
func (r *Relation) Snapshot() *Relation {
	r.shared = true
	return &Relation{
		schema:    r.schema,
		rows:      r.rows,
		index:     r.index,
		secondary: r.secondary,
		shared:    true,
		version:   r.version,
	}
}

// detach gives the relation private storage before a mutation when a
// snapshot still references the current storage. Secondary indexes are
// dropped rather than copied: every caller is a mutation that would
// invalidate them anyway.
func (r *Relation) detach() {
	if !r.shared {
		return
	}
	r.rows = append(make([]Row, 0, len(r.rows)+1), r.rows...)
	if r.index != nil {
		index := make(map[string]int, len(r.index))
		for k, v := range r.index {
			index[k] = v
		}
		r.index = index
	}
	r.secondary = nil
	r.shared = false
	r.version++
}

// keyOf returns the encoded primary key of the row.
func (r *Relation) keyOf(row Row) string { return row.KeyOf(r.schema.key) }

// keyBytes encodes the row's primary key into the relation's scratch
// buffer. Only mutation paths (which are single-threaded by contract) may
// use it; the result is valid until the next keyBytes call.
func (r *Relation) keyBytes(row Row) []byte { return r.keyBuf.Row(row, r.schema.key) }

// validate checks arity and column types (NULL allowed anywhere) and
// returns the row to store. Int values destined for float columns are
// coerced — into a copy, never in place: callers may pass rows aliased
// from relations that concurrent readers are scanning (the serving layer
// shares sample relations across goroutines), so the input row must stay
// untouched.
func (r *Relation) validate(row Row) (Row, error) {
	if len(row) != len(r.schema.cols) {
		return nil, fmt.Errorf("relation: row arity %d != schema arity %d", len(row), len(r.schema.cols))
	}
	out := row
	for i, v := range row {
		if v.IsNull() {
			continue
		}
		want := r.schema.cols[i].Type
		if want == KindNull {
			continue // untyped column accepts anything
		}
		if v.Kind() != want {
			// Permit int into float columns; the generators use both.
			if want == KindFloat && v.Kind() == KindInt {
				if len(out) > 0 && &out[0] == &row[0] {
					out = append(Row(nil), row...)
				}
				out[i] = Float(v.AsFloat())
				continue
			}
			return nil, fmt.Errorf("relation: column %q wants %s, got %s", r.schema.cols[i].Name, want, v.Kind())
		}
	}
	return out, nil
}

// Insert appends a row. With a primary key it returns an error on duplicate
// keys.
func (r *Relation) Insert(row Row) error {
	row, err := r.validate(row)
	if err != nil {
		return err
	}
	if r.index != nil {
		// Duplicate check BEFORE detaching: a failed insert must leave
		// the relation untouched (no copy-on-write, indexes intact) —
		// Table.write relies on failed mutators mutating nothing.
		k := r.keyBytes(row)
		if _, dup := r.index[string(k)]; dup {
			return fmt.Errorf("relation: duplicate key %q", k)
		}
		r.detach()
		r.index[string(k)] = len(r.rows)
	} else {
		r.detach()
	}
	r.rows = append(r.rows, row)
	r.invalidateSecondary()
	return nil
}

// MustInsert inserts and panics on error. Intended for generators and tests
// where a failure is a bug.
func (r *Relation) MustInsert(row Row) {
	if err := r.Insert(row); err != nil {
		panic(err)
	}
}

// Upsert inserts the row, replacing any existing row with the same primary
// key. It reports whether a row was replaced. Without a primary key it
// appends.
func (r *Relation) Upsert(row Row) (replaced bool, err error) {
	row, err = r.validate(row)
	if err != nil {
		return false, err
	}
	r.detach()
	r.invalidateSecondary()
	if r.index == nil {
		r.rows = append(r.rows, row)
		return false, nil
	}
	k := r.keyBytes(row)
	if pos, ok := r.index[string(k)]; ok {
		r.rows[pos] = row
		return true, nil
	}
	r.index[string(k)] = len(r.rows)
	r.rows = append(r.rows, row)
	return false, nil
}

// Get returns the row with the given key values (in key order) and whether
// it exists. Requires a primary key.
func (r *Relation) Get(key ...Value) (Row, bool) {
	pos, ok := r.lookup(Row(key).KeyOf(intRange(len(key))))
	if !ok {
		return nil, false
	}
	return r.rows[pos], true
}

// GetByEncodedKey returns the row whose encoded primary key equals k.
func (r *Relation) GetByEncodedKey(k string) (Row, bool) {
	pos, ok := r.lookup(k)
	if !ok {
		return nil, false
	}
	return r.rows[pos], true
}

// GetByEncodedBytes is GetByEncodedKey over a caller-owned byte encoding
// (e.g. a KeyBuf); the lookup does not allocate and is safe for
// concurrent readers.
func (r *Relation) GetByEncodedBytes(k []byte) (Row, bool) {
	if r.index == nil {
		return nil, false
	}
	pos, ok := r.index[string(k)]
	if !ok {
		return nil, false
	}
	return r.rows[pos], true
}

func (r *Relation) lookup(k string) (int, bool) {
	if r.index == nil {
		return 0, false
	}
	pos, ok := r.index[k]
	return pos, ok
}

// Delete removes the row with the given key values. It reports whether a row
// was removed.
func (r *Relation) Delete(key ...Value) bool {
	return r.DeleteByEncodedKey(Row(key).KeyOf(intRange(len(key))))
}

// DeleteByEncodedKey removes the row with the encoded key k.
func (r *Relation) DeleteByEncodedKey(k string) bool {
	pos, ok := r.lookup(k)
	if !ok {
		return false
	}
	r.detach()
	last := len(r.rows) - 1
	if pos != last {
		r.rows[pos] = r.rows[last]
		r.index[r.keyOf(r.rows[pos])] = pos
	}
	r.rows = r.rows[:last]
	delete(r.index, k)
	r.invalidateSecondary()
	return true
}

// DeleteWhere removes all rows for which pred returns true and reports how
// many were removed.
func (r *Relation) DeleteWhere(pred func(Row) bool) int {
	r.detach()
	kept := r.rows[:0]
	removed := 0
	for _, row := range r.rows {
		if pred(row) {
			removed++
			continue
		}
		kept = append(kept, row)
	}
	r.rows = kept
	if removed > 0 {
		if r.index != nil {
			r.reindex()
		}
		r.invalidateSecondary()
	}
	return removed
}

func (r *Relation) reindex() {
	r.index = make(map[string]int, len(r.rows))
	for i, row := range r.rows {
		r.index[string(r.keyBytes(row))] = i
	}
}

// Clone returns a deep-enough copy: rows are shared (immutable by
// convention) but the row slice and index are fresh, so inserts/deletes on
// the clone do not affect the original.
func (r *Relation) Clone() *Relation {
	c := &Relation{schema: r.schema, rows: append([]Row(nil), r.rows...)}
	if r.index != nil {
		c.index = make(map[string]int, len(r.index))
		for k, v := range r.index {
			c.index[k] = v
		}
	}
	return c
}

// SortByKey orders rows by their encoded primary key (or by full row
// encoding when keyless) and rebuilds the index. Useful for deterministic
// comparison in tests.
func (r *Relation) SortByKey() {
	r.detach()
	keyIdx := r.schema.key
	if len(keyIdx) == 0 {
		keyIdx = intRange(len(r.schema.cols))
	}
	sort.Slice(r.rows, func(i, j int) bool {
		return r.rows[i].KeyOf(keyIdx) < r.rows[j].KeyOf(keyIdx)
	})
	if r.index != nil {
		r.reindex()
	}
}

// Equal reports whether two relations hold the same schema and the same set
// of rows (order-insensitive when both are keyed; order-sensitive
// otherwise).
func (r *Relation) Equal(o *Relation) bool {
	if !r.schema.Equal(o.schema) || len(r.rows) != len(o.rows) {
		return false
	}
	if r.index != nil && o.index != nil {
		for k, pos := range r.index {
			opos, ok := o.index[k]
			if !ok || !r.rows[pos].Equal(o.rows[opos]) {
				return false
			}
		}
		return true
	}
	for i := range r.rows {
		if !r.rows[i].Equal(o.rows[i]) {
			return false
		}
	}
	return true
}

// String renders a compact textual dump (schema plus up to 20 rows),
// intended for debugging.
func (r *Relation) String() string {
	s := fmt.Sprintf("[%s] %d rows", r.schema, len(r.rows))
	n := len(r.rows)
	if n > 20 {
		n = 20
	}
	for i := 0; i < n; i++ {
		s += "\n  " + fmt.Sprint([]Value(r.rows[i]))
	}
	if n < len(r.rows) {
		s += "\n  ..."
	}
	return s
}

func intRange(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// ---------------------------------------------------------------- indexes

// secondaryIndex maps an encoded column tuple to the positions of rows
// holding it (non-unique).
type secondaryIndex struct {
	cols []int
	pos  map[string][]int
}

// indexSig canonicalizes a column set for index lookup.
func indexSig(cols []int) string {
	var b []byte
	for _, c := range cols {
		b = append(b, byte(c>>8), byte(c))
	}
	return string(b)
}

// BuildIndex builds (or rebuilds) a secondary index on the given column
// indexes. Joins probe it instead of scanning; the db layer rebuilds
// registered indexes after applying deltas.
func (r *Relation) BuildIndex(cols []int) {
	if r.shared {
		// Copy-on-write for the secondary map alone: rows are not touched,
		// so existing snapshots keep their (shared, still valid) indexes
		// while the live side gains the new one.
		sec := make(map[string]*secondaryIndex, len(r.secondary)+1)
		for k, v := range r.secondary {
			sec[k] = v
		}
		r.secondary = sec
	}
	idx := &secondaryIndex{cols: append([]int(nil), cols...), pos: make(map[string][]int, len(r.rows))}
	var kb KeyBuf
	for i, row := range r.rows {
		k := kb.Row(row, idx.cols)
		idx.pos[string(k)] = append(idx.pos[string(k)], i)
	}
	if r.secondary == nil {
		r.secondary = map[string]*secondaryIndex{}
	}
	r.secondary[indexSig(cols)] = idx
}

// HasIndex reports whether rows can be located by the given columns in
// O(1): either they are exactly the primary key or a secondary index
// exists.
func (r *Relation) HasIndex(cols []int) bool {
	if r.index != nil && indexSig(cols) == indexSig(r.schema.key) {
		return true
	}
	_, ok := r.secondary[indexSig(cols)]
	return ok
}

// Probe returns the positions of rows whose col tuple encodes to key.
// HasIndex must be true for the column set.
func (r *Relation) Probe(cols []int, key string) []int {
	if r.index != nil && indexSig(cols) == indexSig(r.schema.key) {
		if p, ok := r.index[key]; ok {
			return []int{p}
		}
		return nil
	}
	if idx, ok := r.secondary[indexSig(cols)]; ok {
		return idx.pos[key]
	}
	return nil
}

// ProbeBytes is Probe over a caller-owned byte encoding (e.g. a KeyBuf):
// matching row positions are appended to dst, whose backing array the
// caller reuses across probes. It is the one-shot form of
// LookupIndex(...).ProbeBytes — per-row probe loops should resolve the
// Index handle once instead.
func (r *Relation) ProbeBytes(cols []int, key []byte, dst []int) []int {
	ix, ok := r.LookupIndex(cols)
	if !ok {
		return dst
	}
	return ix.ProbeBytes(key, dst)
}

// invalidateSecondary drops all secondary indexes (called on mutation).
func (r *Relation) invalidateSecondary() { r.secondary = nil }

// Index is a probe handle resolved once per scan so that per-row probes
// pay no signature computation or allocation. It is invalidated by any
// mutation of the relation; resolve, probe, and discard within one
// read-only pass.
type Index struct {
	rel *Relation
	pk  bool
	sec *secondaryIndex
}

// LookupIndex resolves a probe handle for the given column set, or
// reports that no index covers it (same condition as HasIndex).
func (r *Relation) LookupIndex(cols []int) (Index, bool) {
	if r.index != nil && indexSig(cols) == indexSig(r.schema.key) {
		return Index{rel: r, pk: true}, true
	}
	if idx, ok := r.secondary[indexSig(cols)]; ok {
		return Index{rel: r, sec: idx}, true
	}
	return Index{}, false
}

// ProbeBytes appends the positions of rows whose indexed column tuple
// encodes to key. It does not allocate beyond dst growth and is safe for
// concurrent readers.
func (ix Index) ProbeBytes(key []byte, dst []int) []int {
	if ix.pk {
		if p, ok := ix.rel.index[string(key)]; ok {
			return append(dst, p)
		}
		return dst
	}
	return append(dst, ix.sec.pos[string(key)]...)
}
