package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/sampleclean/svc/internal/relation"
)

func testSchema() relation.Schema {
	return relation.NewSchema([]relation.Column{
		{Name: "a", Type: relation.KindInt},
		{Name: "b", Type: relation.KindFloat},
		{Name: "s", Type: relation.KindString},
	}, "a")
}

func evalOn(t *testing.T, e Expr, row relation.Row) relation.Value {
	t.Helper()
	b, err := e.Bind(testSchema())
	if err != nil {
		t.Fatalf("bind %s: %v", e, err)
	}
	return b.Eval(row)
}

func TestColumnBinding(t *testing.T) {
	row := relation.Row{relation.Int(7), relation.Float(2.5), relation.String("xy")}
	if got := evalOn(t, Col("a"), row); !got.Equal(relation.Int(7)) {
		t.Errorf("a = %v", got)
	}
	if _, err := Col("zz").Bind(testSchema()); err == nil {
		t.Error("binding unknown column should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("eval of unbound column should panic")
		}
	}()
	Col("a").Eval(row)
}

func TestArithmetic(t *testing.T) {
	row := relation.Row{relation.Int(7), relation.Float(2.5), relation.String("xy")}
	cases := []struct {
		e    Expr
		want relation.Value
	}{
		{Add(Col("a"), IntLit(1)), relation.Int(8)},
		{Sub(Col("a"), IntLit(2)), relation.Int(5)},
		{Mul(Col("b"), IntLit(2)), relation.Float(5)},
		{Div(Col("a"), IntLit(2)), relation.Float(3.5)},
		{Add(Col("a"), Lit(relation.Null())), relation.Null()},
		{Div(Col("a"), IntLit(0)), relation.Null()},
	}
	for _, c := range cases {
		if got := evalOn(t, c.e, row); !got.Equal(c.want) && !(got.IsNull() && c.want.IsNull()) {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestComparisons(t *testing.T) {
	row := relation.Row{relation.Int(7), relation.Float(2.5), relation.String("xy")}
	trueCases := []Expr{
		Eq(Col("a"), IntLit(7)),
		Ne(Col("a"), IntLit(8)),
		Lt(Col("b"), IntLit(3)),
		Le(Col("a"), IntLit(7)),
		Gt(Col("a"), IntLit(6)),
		Ge(Col("a"), IntLit(7)),
		Eq(Col("s"), StringLit("xy")),
	}
	for _, e := range trueCases {
		if !evalOn(t, e, row).AsBool() {
			t.Errorf("%s should be true", e)
		}
	}
	falseCases := []Expr{
		Eq(Col("a"), IntLit(8)),
		Gt(Col("a"), Lit(relation.Null())), // NULL comparison -> false
		Eq(Lit(relation.Null()), Lit(relation.Null())),
	}
	for _, e := range falseCases {
		if evalOn(t, e, row).AsBool() {
			t.Errorf("%s should be false", e)
		}
	}
}

func TestLogic(t *testing.T) {
	row := relation.Row{relation.Int(7), relation.Float(2.5), relation.String("xy")}
	if !evalOn(t, And(Gt(Col("a"), IntLit(1)), Lt(Col("a"), IntLit(10))), row).AsBool() {
		t.Error("and should be true")
	}
	if evalOn(t, And(Gt(Col("a"), IntLit(1)), Lt(Col("a"), IntLit(2))), row).AsBool() {
		t.Error("and should be false")
	}
	if !evalOn(t, Or(Eq(Col("a"), IntLit(0)), Eq(Col("a"), IntLit(7))), row).AsBool() {
		t.Error("or should be true")
	}
	if !evalOn(t, Not(Eq(Col("a"), IntLit(0))), row).AsBool() {
		t.Error("not should be true")
	}
	if !evalOn(t, And(), row).AsBool() {
		t.Error("empty and is true")
	}
	if evalOn(t, Or(), row).AsBool() {
		t.Error("empty or is false")
	}
}

func TestNullHandling(t *testing.T) {
	row := relation.Row{relation.Int(7), relation.Float(2.5), relation.String("xy")}
	got := evalOn(t, Coalesce(Lit(relation.Null()), Col("a"), IntLit(0)), row)
	if !got.Equal(relation.Int(7)) {
		t.Errorf("coalesce = %v", got)
	}
	got = evalOn(t, Coalesce(Lit(relation.Null()), Lit(relation.Null())), row)
	if !got.IsNull() {
		t.Errorf("all-null coalesce = %v", got)
	}
	if !evalOn(t, IsNull(Lit(relation.Null())), row).AsBool() {
		t.Error("IsNull(NULL) should be true")
	}
	if evalOn(t, IsNull(Col("a")), row).AsBool() {
		t.Error("IsNull(a) should be false")
	}
}

func TestIf(t *testing.T) {
	row := relation.Row{relation.Int(7), relation.Float(2.5), relation.String("xy")}
	got := evalOn(t, If(Gt(Col("a"), IntLit(5)), IntLit(1), IntLit(0)), row)
	if !got.Equal(relation.Int(1)) {
		t.Errorf("if = %v", got)
	}
	got = evalOn(t, If(Gt(Col("a"), IntLit(50)), IntLit(1), IntLit(0)), row)
	if !got.Equal(relation.Int(0)) {
		t.Errorf("if = %v", got)
	}
}

func TestFuncs(t *testing.T) {
	row := relation.Row{relation.Int(-7), relation.Float(2.5), relation.String("hello")}
	if got := evalOn(t, Func("substr", Col("s"), IntLit(1), IntLit(3)), row); got.AsString() != "ell" {
		t.Errorf("substr = %v", got)
	}
	if got := evalOn(t, Func("substr", Col("s"), IntLit(3), IntLit(99)), row); got.AsString() != "lo" {
		t.Errorf("substr overflow = %v", got)
	}
	if got := evalOn(t, Func("mod", Col("a"), IntLit(4)), row); got.AsInt() != -3 {
		t.Errorf("mod = %v", got)
	}
	if got := evalOn(t, Func("abs", Col("a")), row); got.AsInt() != 7 {
		t.Errorf("abs = %v", got)
	}
	if got := evalOn(t, Func("concat", Col("s"), StringLit("!")), row); got.AsString() != "hello!" {
		t.Errorf("concat = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown func should panic")
		}
	}()
	Func("nope")
}

func TestColumnsCollection(t *testing.T) {
	e := And(Gt(Col("a"), IntLit(1)), Or(Eq(Col("s"), StringLit("x")), IsNull(Col("b"))))
	cols := e.Columns(nil)
	want := map[string]bool{"a": true, "b": true, "s": true}
	if len(cols) != 3 {
		t.Fatalf("Columns = %v", cols)
	}
	for _, c := range cols {
		if !want[c] {
			t.Errorf("unexpected column %q", c)
		}
	}
}

func TestHelpers(t *testing.T) {
	row := relation.Row{relation.Int(7), relation.Float(2.5), relation.String("xy")}
	if !evalOn(t, Between("a", relation.Int(5), relation.Int(9)), row).AsBool() {
		t.Error("between should hold")
	}
	if evalOn(t, Between("a", relation.Int(8), relation.Int(9)), row).AsBool() {
		t.Error("between should not hold")
	}
	if !evalOn(t, InInts("a", []int64{1, 7, 9}), row).AsBool() {
		t.Error("in should hold")
	}
	if evalOn(t, InInts("a", []int64{1, 2}), row).AsBool() {
		t.Error("in should not hold")
	}
	if !evalOn(t, True(), row).AsBool() {
		t.Error("True() should be true")
	}
}

func TestStringRendering(t *testing.T) {
	e := And(Gt(Col("a"), IntLit(1)), Eq(Col("s"), StringLit("x")))
	s := e.String()
	for _, sub := range []string{"a", ">", "1", "and", "s", "="} {
		if !strings.Contains(s, sub) {
			t.Errorf("String() = %q missing %q", s, sub)
		}
	}
}

// Property: If(cond,1,0) agrees with the boolean value of cond — the
// trans-table rewriting in estimator relies on this.
func TestIfIndicatorQuick(t *testing.T) {
	f := func(a int64, threshold int64) bool {
		row := relation.Row{relation.Int(a), relation.Float(0), relation.String("")}
		cond := Gt(Col("a"), IntLit(threshold))
		ind := If(cond, IntLit(1), IntLit(0))
		bc := MustBind(cond, testSchema())
		bi := MustBind(ind, testSchema())
		return bc.Eval(row).AsBool() == (bi.Eval(row).AsInt() == 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Coalesce(x, 0) is never NULL.
func TestCoalesceNeverNullQuick(t *testing.T) {
	f := func(useNull bool, v int64) bool {
		var x Expr
		if useNull {
			x = Lit(relation.Null())
		} else {
			x = IntLit(v)
		}
		e := MustBind(Coalesce(x, IntLit(0)), testSchema())
		return !e.Eval(relation.Row{relation.Int(0), relation.Float(0), relation.String("")}).IsNull()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
