// Package expr implements the scalar expression language used by selection
// predicates and generalized projections in the SVC relational algebra
// (the paper's Section 3.1 operators): column references, constants,
// arithmetic, comparisons, boolean logic, and the NULL-handling helpers
// (COALESCE, IS NULL, IF) that the change-table maintenance strategy's
// merge projection (Example 1) needs.
//
// Expressions are built unbound (columns referenced by name) and must be
// bound against a schema before evaluation; Bind resolves names to column
// indexes and returns a new, bound expression tree.
//
// Concurrency contract: expression trees are immutable — Bind returns a
// new tree, Eval reads the row and the tree without mutating either — so
// one bound expression is safely shared by concurrent evaluations (the
// batch pipeline's morsel workers rely on this).
package expr
