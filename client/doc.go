// Package client is the thin Go client for svcd, the svcql-over-HTTP
// serving daemon (package server): Query sends svcql text and returns the
// decoded api.QueryResponse (estimate + confidence interval + staleness
// metadata, per-group estimates, or pipeline rows), CreateView
// materializes views over the wire, and Stats reads the server's serving
// counters. Admission-control rejections and per-query deadline expiries
// surface as typed errors (IsOverloaded, IsDeadlineExceeded).
//
// Concurrency contract: a Client is immutable after New and safe for
// unrestricted concurrent use; it delegates connection management to its
// *http.Client.
package client
