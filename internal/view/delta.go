package view

import (
	"fmt"

	"github.com/sampleclean/svc/internal/algebra"
	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
)

// MultCol is the signed-multiplicity column carried by delta streams:
// +1 for an inserted contribution, −1 for a deleted one. Multiplicities
// multiply through joins, so the delta of a join is exact:
// (L+δL) ⋈ (R+δR) = L⋈R + δL⋈R + L⋈δR + δL⋈δR.
const MultCol = "__mult"

// DeltaPlan derives the delta stream of plan: a keyless bag with the
// plan's columns plus MultCol, containing one row per added (+1) or
// removed (−1) contribution implied by the staged deltas ∂D.
//
// Supported operators: Scan, Select, Project, Alias, inner Join. Anything
// else (outer joins, aggregates, set operators) is rejected — callers fall
// back to the recompute strategy.
func DeltaPlan(n algebra.Node) (algebra.Node, error) {
	switch t := n.(type) {
	case *algebra.ScanNode:
		return deltaScan(t)
	case *algebra.SelectNode:
		child, err := DeltaPlan(t.Children()[0])
		if err != nil {
			return nil, err
		}
		return algebra.Select(child, t.Pred())
	case *algebra.ProjectNode:
		child, err := DeltaPlan(t.Children()[0])
		if err != nil {
			return nil, err
		}
		outs := append(append([]algebra.Output(nil), t.Outputs()...), algebra.OutCol(MultCol))
		return algebra.ProjectKeyed(child, outs) // keyless bag
	case *algebra.AliasNode:
		child, err := DeltaPlan(t.Children()[0])
		if err != nil {
			return nil, err
		}
		// Alias would also rename MultCol; re-project to the aliased
		// names with MultCol kept verbatim.
		var outs []algebra.Output
		for _, c := range t.Children()[0].Schema().Cols() {
			outs = append(outs, algebra.Out(t.Prefix()+"."+c.Name, expr.Col(c.Name)))
		}
		outs = append(outs, algebra.OutCol(MultCol))
		return algebra.ProjectKeyed(child, outs)
	case *algebra.JoinNode:
		return deltaJoin(t)
	default:
		return nil, fmt.Errorf("view: operator %s not supported by change-table maintenance", n)
	}
}

// deltaScan builds ΔR×(+1) ∪ ∇R×(−1) as a keyless bag.
func deltaScan(s *algebra.ScanNode) (algebra.Node, error) {
	// Bag schema: same columns, no key (an update contributes one +1 and
	// one −1 row under the same base key).
	bag := relation.NewSchema(s.Schema().Cols())
	withMult := func(name string, mult int64) (algebra.Node, error) {
		scan := algebra.Scan(name, bag)
		var outs []algebra.Output
		for _, c := range bag.Cols() {
			outs = append(outs, algebra.OutCol(c.Name))
		}
		outs = append(outs, algebra.Out(MultCol, expr.IntLit(mult)))
		return algebra.ProjectKeyed(scan, outs)
	}
	ins, err := withMult(db.InsOf(s.Name()), +1)
	if err != nil {
		return nil, err
	}
	del, err := withMult(db.DelOf(s.Name()), -1)
	if err != nil {
		return nil, err
	}
	return algebra.Union(ins, del)
}

// deltaJoin builds δL⋈R ∪ L⋈δR ∪ δL⋈δR with multiplied multiplicities,
// each piece normalized to the join's output columns plus MultCol.
func deltaJoin(j *algebra.JoinNode) (algebra.Node, error) {
	spec := j.Spec()
	if spec.Type != algebra.Inner {
		return nil, fmt.Errorf("view: change-table maintenance supports inner joins only, got %s", spec.Type)
	}
	left, right := j.Children()[0], j.Children()[1]
	dLeft, err := DeltaPlan(left)
	if err != nil {
		return nil, err
	}
	dRight, err := DeltaPlan(right)
	if err != nil {
		return nil, err
	}
	// Rename the right delta's MultCol to avoid the clash in piece 3.
	const multR = "__multR"
	var rOuts []algebra.Output
	for _, c := range right.Schema().Cols() {
		rOuts = append(rOuts, algebra.OutCol(c.Name))
	}
	rOuts = append(rOuts, algebra.Out(multR, expr.Col(MultCol)))
	dRightRenamed, err := algebra.ProjectKeyed(dRight, rOuts)
	if err != nil {
		return nil, err
	}

	// normalize projects a piece to the join's schema columns + MultCol.
	normalize := func(piece algebra.Node, mult expr.Expr) (algebra.Node, error) {
		var outs []algebra.Output
		for _, c := range j.Schema().Cols() {
			outs = append(outs, algebra.OutCol(c.Name))
		}
		outs = append(outs, algebra.Out(MultCol, mult))
		return algebra.ProjectKeyed(piece, outs)
	}

	p1Join, err := algebra.Join(dLeft, right, spec)
	if err != nil {
		return nil, err
	}
	p1, err := normalize(p1Join, expr.Col(MultCol))
	if err != nil {
		return nil, err
	}
	p2Join, err := algebra.Join(left, dRightRenamed, spec)
	if err != nil {
		return nil, err
	}
	p2, err := normalize(p2Join, expr.Col(multR))
	if err != nil {
		return nil, err
	}
	p3Join, err := algebra.Join(dLeft, dRightRenamed, spec)
	if err != nil {
		return nil, err
	}
	p3, err := normalize(p3Join, expr.Mul(expr.Col(MultCol), expr.Col(multR)))
	if err != nil {
		return nil, err
	}

	u1, err := algebra.Union(p1, p2)
	if err != nil {
		return nil, err
	}
	return algebra.Union(u1, p3)
}
