package svcql

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/estimator"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/view"
)

func exampleDB(t testing.TB) *db.Database {
	t.Helper()
	d := db.New()
	video := d.MustCreate("Video", relation.NewSchema([]relation.Column{
		{Name: "videoId", Type: relation.KindInt},
		{Name: "ownerId", Type: relation.KindInt},
		{Name: "duration", Type: relation.KindFloat},
	}, "videoId"))
	for i := int64(0); i < 10; i++ {
		video.MustInsert(relation.Row{relation.Int(i), relation.Int(i % 3), relation.Float(float64(i) / 2)})
	}
	logT := d.MustCreate("Log", relation.NewSchema([]relation.Column{
		{Name: "sessionId", Type: relation.KindInt},
		{Name: "videoId", Type: relation.KindInt},
	}, "sessionId"))
	for i := int64(0); i < 40; i++ {
		logT.MustInsert(relation.Row{relation.Int(i), relation.Int(i % 10)})
	}
	return d
}

// The paper's Section 2.1 view, verbatim modulo whitespace.
const visitViewSQL = `
CREATE VIEW visitView AS
SELECT videoId, ownerId, COUNT(1) AS visitCount
FROM Log JOIN Video ON Log.videoId = Video.videoId
GROUP BY videoId, ownerId`

func TestPlanViewRunningExample(t *testing.T) {
	d := exampleDB(t)
	def, err := PlanView(d, visitViewSQL)
	if err != nil {
		t.Fatal(err)
	}
	if def.Name != "visitView" {
		t.Errorf("name = %q", def.Name)
	}
	v, err := view.Materialize(d, def)
	if err != nil {
		t.Fatal(err)
	}
	if v.Data().Len() != 10 {
		t.Fatalf("view rows = %d", v.Data().Len())
	}
	row, ok := v.Data().Get(relation.Int(3), relation.Int(0))
	if !ok || row[2].AsInt() != 4 {
		t.Errorf("visitCount(3) = %v (ok=%v)", row, ok)
	}
	// The view is change-table maintainable.
	m, err := view.NewMaintainer(v)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind() != view.ChangeTable {
		t.Errorf("strategy = %v", m.Kind())
	}
}

func TestPlanViewProjectionAndWhere(t *testing.T) {
	d := exampleDB(t)
	def, err := PlanView(d, `
		CREATE VIEW longVideos AS
		SELECT videoId, duration * 60 AS minutes
		FROM Video WHERE duration >= 1.5`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := view.Materialize(d, def)
	if err != nil {
		t.Fatal(err)
	}
	if v.Data().Len() != 7 {
		t.Fatalf("rows = %d", v.Data().Len())
	}
	if got := v.KeyNames(); len(got) != 1 || got[0] != "videoId" {
		t.Errorf("key = %v", got)
	}
}

// The paper's Example 2 query, against the compiled view.
func TestPlanQueryExample2(t *testing.T) {
	d := exampleDB(t)
	def, err := PlanView(d, visitViewSQL)
	if err != nil {
		t.Fatal(err)
	}
	v, err := view.Materialize(d, def)
	if err != nil {
		t.Fatal(err)
	}
	aq, err := PlanQuery(v, `SELECT COUNT(1) FROM visitView WHERE visitCount > 3`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := estimator.RunExact(v.Data(), aq.Query)
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 { // 40 visits over 10 videos = 4 each, all > 3
		t.Errorf("count = %v", got)
	}
	// Group-by variant.
	aq, err = PlanQuery(v, `SELECT ownerId, SUM(visitCount) FROM visitView GROUP BY ownerId`)
	if err != nil {
		t.Fatal(err)
	}
	if len(aq.GroupBy) != 1 || aq.GroupBy[0] != "ownerId" {
		t.Errorf("groupBy = %v", aq.GroupBy)
	}
	groups, _, err := estimator.GroupExact(v.Data(), aq.Query, aq.GroupBy)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Errorf("groups = %d", len(groups))
	}
}

func TestPlanQueryAggregates(t *testing.T) {
	d := exampleDB(t)
	def, _ := PlanView(d, visitViewSQL)
	v, _ := view.Materialize(d, def)
	for _, src := range []string{
		`SELECT SUM(visitCount) FROM visitView`,
		`SELECT AVG(visitCount) FROM visitView WHERE ownerId = 1`,
		`SELECT MIN(visitCount) FROM visitView`,
		`SELECT MAX(visitCount) FROM visitView`,
		`SELECT MEDIAN(visitCount) FROM visitView`,
		`SELECT COUNT(*) FROM visitView WHERE visitCount BETWEEN 2 AND 5`,
	} {
		if _, err := PlanQuery(v, src); err != nil {
			t.Errorf("%s: %v", src, err)
		}
	}
}

func TestExpressionForms(t *testing.T) {
	d := exampleDB(t)
	cases := []string{
		`CREATE VIEW x AS SELECT videoId, duration FROM Video WHERE duration > 1 AND ownerId <> 2`,
		`CREATE VIEW x AS SELECT videoId, duration FROM Video WHERE NOT (duration < 1 OR duration > 4)`,
		`CREATE VIEW x AS SELECT videoId, (duration + 1) * 2 AS d2 FROM Video`,
		`CREATE VIEW x AS SELECT videoId, duration FROM Video WHERE duration BETWEEN 0.5 AND 3`,
		`CREATE VIEW x AS SELECT videoId, duration FROM Video WHERE duration IS NOT NULL`,
		`CREATE VIEW x AS SELECT videoId, -duration AS neg FROM Video`,
		`CREATE VIEW x AS SELECT videoId, ownerId FROM Video -- trailing comment`,
	}
	for _, src := range cases {
		def, err := PlanView(d, src)
		if err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		if _, err := view.Materialize(d, def); err != nil {
			t.Errorf("%s: materialize: %v", src, err)
		}
	}
}

func TestErrors(t *testing.T) {
	d := exampleDB(t)
	def, _ := PlanView(d, visitViewSQL)
	v, _ := view.Materialize(d, def)
	cases := []struct {
		src     string
		wantSub string
		query   bool
	}{
		{`SELECT COUNT(1) FROM visitView`, "CREATE VIEW", false},
		{`CREATE VIEW v AS SELECT x FROM Nope`, "unknown table", false},
		{`CREATE VIEW v AS SELECT ownerId FROM Video`, "primary key", false},
		{`CREATE VIEW v AS SELECT videoId FROM Video GROUP BY videoId`, "GROUP BY without aggregates", false},
		{`CREATE VIEW v AS SELECT COUNT(1) AS c FROM Log`, "GROUP BY", false},
		{`CREATE VIEW v AS SELECT videoId, COUNT(1 FROM Log GROUP BY videoId`, "expected", false},
		{`CREATE VIEW v AS SELECT videoId FROM Video JOIN Log ON zzz = qqq`, "matches neither side", false},
		{`SELECT COUNT(1) FROM otherView`, "targets", true},
		{`SELECT visitCount FROM visitView`, "aggregate", true},
		{`SELECT SUM(visitCount), SUM(visitCount) FROM visitView`, "exactly one aggregate", true},
		{`SELECT SUM(nope) FROM visitView`, "no column", true},
		{`SELECT SUM(visitCount) FROM visitView WHERE nope > 1`, "unknown column", true},
		{`SELECT SUM(visitCount + 1) FROM visitView`, "must be a view column", true},
	}
	for _, c := range cases {
		var err error
		if c.query {
			_, err = PlanQuery(v, c.src)
		} else {
			_, err = PlanView(d, c.src)
		}
		if err == nil {
			t.Errorf("%s: expected error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not contain %q", c.src, err, c.wantSub)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{
		`SELECT 'unterminated FROM x`,
		`SELECT 1.2.3 FROM x`,
		`SELECT a ; b FROM x`,
	} {
		if _, _, err := Parse(src); err == nil {
			t.Errorf("%s: expected lex/parse error", src)
		}
	}
}

func TestStringLiteralsAndEscapes(t *testing.T) {
	toks, err := lex(`WHERE name = 'O''Brien'`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tok := range toks {
		if tok.kind == tokString && tok.text == "O'Brien" {
			found = true
		}
	}
	if !found {
		t.Errorf("escaped string not lexed: %+v", toks)
	}
}

// Property: the lexer terminates and never panics on arbitrary input, and
// Parse either errors or returns exactly one statement.
func TestParseNeverPanicsQuick(t *testing.T) {
	f := func(src string) bool {
		cv, sel, err := Parse(src)
		if err != nil {
			return cv == nil && sel == nil
		}
		return (cv != nil) != (sel != nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// End-to-end: SQL-defined view cleaned and queried via the estimators
// matches a hand-built plan.
func TestSQLViewEndToEnd(t *testing.T) {
	d := exampleDB(t)
	def, err := PlanView(d, visitViewSQL)
	if err != nil {
		t.Fatal(err)
	}
	v, err := view.Materialize(d, def)
	if err != nil {
		t.Fatal(err)
	}
	// stage updates and check maintenance equivalence
	logT := d.Table("Log")
	for i := int64(100); i < 120; i++ {
		if err := logT.StageInsert(relation.Row{relation.Int(i), relation.Int(i % 10)}); err != nil {
			t.Fatal(err)
		}
	}
	m, err := view.NewMaintainer(v)
	if err != nil {
		t.Fatal(err)
	}
	snap := d.Snapshot()
	if err := snap.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	truth, err := view.Materialize(snap, def)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Maintain(d); err != nil {
		t.Fatal(err)
	}
	if v.Data().Len() != truth.Data().Len() {
		t.Fatalf("maintained %d rows, truth %d", v.Data().Len(), truth.Data().Len())
	}
	aq, err := PlanQuery(v, `SELECT SUM(visitCount) FROM visitView`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := estimator.RunExact(v.Data(), aq.Query)
	if err != nil {
		t.Fatal(err)
	}
	if got != 60 {
		t.Errorf("total visits = %v, want 60", got)
	}
}
