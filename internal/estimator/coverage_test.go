package estimator

// Statistical coverage regression test for Section 5's guarantee: the 95%
// confidence intervals produced by SVC+CORR and SVC+AQP must actually
// cover the true answer about 95% of the time. Each trial re-draws the
// sample with an independently salted hash (hashing.Salted models an
// independent draw from the hash family) over the same data and staged
// deltas, so the observed coverage estimates the true coverage of the
// interval procedure. The band is deliberately loose (91–99% over the
// trial count) to keep the test deterministic-robust while still catching
// broken variance formulas, which miss by far more.

import (
	"math/rand"
	"testing"

	"github.com/sampleclean/svc/internal/algebra"
	"github.com/sampleclean/svc/internal/clean"
	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/hashing"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/view"
)

// coverageScenario builds the running-example schema with enough rows for
// the CLT to hold at the chosen sampling ratio.
func coverageScenario(t testing.TB) (*db.Database, *view.View, *view.Maintainer, float64) {
	t.Helper()
	const (
		videos  = 500
		visits  = 8000
		updates = 1500
	)
	rng := rand.New(rand.NewSource(99))
	d := db.New()
	vt := d.MustCreate("Video", relation.NewSchema([]relation.Column{
		{Name: "videoId", Type: relation.KindInt},
		{Name: "ownerId", Type: relation.KindInt},
		{Name: "duration", Type: relation.KindFloat},
	}, "videoId"))
	for i := 0; i < videos; i++ {
		vt.MustInsert(relation.Row{relation.Int(int64(i)), relation.Int(rng.Int63n(20)), relation.Float(rng.Float64() * 3)})
	}
	lt := d.MustCreate("Log", relation.NewSchema([]relation.Column{
		{Name: "sessionId", Type: relation.KindInt},
		{Name: "videoId", Type: relation.KindInt},
	}, "sessionId"))
	for i := 0; i < visits; i++ {
		lt.MustInsert(relation.Row{relation.Int(int64(i)), relation.Int(rng.Int63n(videos))})
	}
	plan := algebra.MustGroupBy(
		algebra.MustJoin(
			algebra.Scan("Log", lt.Schema()),
			algebra.Scan("Video", vt.Schema()),
			algebra.JoinSpec{Type: algebra.Inner, On: algebra.On("videoId", "videoId"), Merge: true},
		),
		[]string{"videoId", "ownerId"},
		algebra.CountAs("visitCount"),
		algebra.SumAs(expr.Col("duration"), "totalDuration"),
	)
	v, err := view.Materialize(d, view.Definition{Name: "visitView", Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	m, err := view.NewMaintainer(v)
	if err != nil {
		t.Fatal(err)
	}
	// Staleness: new visits (some to new videos) and some deletions.
	nextVideo := int64(videos)
	for i := 0; i < updates; i++ {
		switch rng.Intn(12) {
		case 0:
			vt.StageInsert(relation.Row{relation.Int(nextVideo), relation.Int(rng.Int63n(20)), relation.Float(rng.Float64() * 3)})
			lt.StageInsert(relation.Row{relation.Int(int64(visits + i)), relation.Int(nextVideo)})
			nextVideo++
		case 1:
			_ = lt.StageDelete(relation.Int(rng.Int63n(visits)))
		default:
			lt.StageInsert(relation.Row{relation.Int(int64(visits + i)), relation.Int(rng.Int63n(videos))})
		}
	}
	// Ground truth for SUM(visitCount) on the fully maintained view.
	snap := d.Snapshot()
	if err := snap.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	fresh, err := view.Materialize(snap, v.Definition())
	if err != nil {
		t.Fatal(err)
	}
	truth, err := RunExact(fresh.Data(), Sum("visitCount", nil))
	if err != nil {
		t.Fatal(err)
	}
	return d, v, m, truth
}

// TestEstimatorCoverage runs ≥200 salted trials per estimator and pins
// the empirical 95% CI coverage into the 91–99% band.
func TestEstimatorCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("coverage study is not short")
	}
	d, v, m, truth := coverageScenario(t)
	const (
		trials = 200
		ratio  = 0.2
		conf   = 0.95
	)
	q := Sum("visitCount", nil)
	covered := map[string]int{}
	for salt := 0; salt < trials; salt++ {
		c, err := clean.New(m, ratio, hashing.Salted{Salt: uint64(salt)})
		if err != nil {
			t.Fatal(err)
		}
		samples, err := c.Clean(d)
		if err != nil {
			t.Fatal(err)
		}
		corr, err := Corr(v.Data(), samples, q, conf)
		if err != nil {
			t.Fatal(err)
		}
		aqp, err := AQP(samples, q, conf)
		if err != nil {
			t.Fatal(err)
		}
		if corr.Covers(truth) {
			covered["svc+corr"]++
		}
		if aqp.Covers(truth) {
			covered["svc+aqp"]++
		}
	}
	for _, method := range []string{"svc+corr", "svc+aqp"} {
		coverage := float64(covered[method]) / trials
		t.Logf("%s: %d/%d trials covered the truth (%.1f%%)", method, covered[method], trials, 100*coverage)
		if coverage < 0.91 || coverage > 0.99 {
			t.Errorf("%s: empirical coverage %.3f outside [0.91, 0.99] for nominal %.2f", method, coverage, conf)
		}
	}
}
