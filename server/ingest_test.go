package server

import (
	"context"
	"strings"
	"testing"
	"time"

	svc "github.com/sampleclean/svc"
	"github.com/sampleclean/svc/client"
	"github.com/sampleclean/svc/server/api"
)

// ingestDB builds the running-example dataset deterministically — the
// same way twice, which is what durable recovery relies on (the dataset
// load is recreated, the log replays the staged suffix on top).
func ingestDB(t *testing.T, videos, visits int) *svc.Database {
	t.Helper()
	d := svc.NewDatabase()
	video := d.MustCreate("Video", svc.NewSchema([]svc.Column{
		svc.Col("videoId", svc.KindInt),
		svc.Col("ownerId", svc.KindInt),
	}, "videoId"))
	for i := 0; i < videos; i++ {
		video.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(int64(i % 10))})
	}
	logT := d.MustCreate("Log", svc.NewSchema([]svc.Column{
		svc.Col("sessionId", svc.KindInt),
		svc.Col("videoId", svc.KindInt),
	}, "sessionId"))
	for i := 0; i < visits; i++ {
		logT.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(int64(i % videos))})
	}
	return d
}

func startServer(t *testing.T, d *svc.Database, cfg Config) (*Server, *client.Client) {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	srv := New(d, cfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, client.New("http://" + srv.Addr())
}

func TestIngestEndpoint(t *testing.T) {
	d := ingestDB(t, 10, 100)
	_, cl := startServer(t, d, Config{})

	resp, err := cl.Ingest("Log", []api.IngestOp{
		client.InsertOp(1000, 3),
		client.InsertOp(1001, 4),
		client.UpdateOp(5, 9),
		client.DeleteOp(6),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Staged != 4 || resp.Durable {
		t.Fatalf("resp = %+v, want 4 staged, not durable", resp)
	}
	ins, del := d.Table("Log").PendingSize()
	if ins != 3 || del != 2 {
		// update = upsert ΔR + old row in ∇R; delete adds to ∇R.
		t.Fatalf("pending (ins,del) = (%d,%d), want (3,2)", ins, del)
	}

	// Validation: unknown tables are 404, a bad op inside a batch names
	// its index, and ops before it stay staged.
	if _, err := cl.Ingest("Nope", []api.IngestOp{client.InsertOp(1)}); err == nil {
		t.Fatal("ingest into unknown table succeeded")
	} else if ae, ok := err.(*client.APIError); !ok || ae.StatusCode != 404 {
		t.Fatalf("unknown table error = %v, want 404", err)
	}
	_, err = cl.Ingest("Log", []api.IngestOp{
		client.InsertOp(2000, 1),
		{Op: "bogus"},
	})
	ae, ok := err.(*client.APIError)
	if !ok || ae.StatusCode != 400 {
		t.Fatalf("bad op error = %v, want 400", err)
	}
	if want := "op 1"; !strings.Contains(ae.Message, want) {
		t.Fatalf("error %q does not name the failing op index", ae.Message)
	}
	if _, err := cl.Ingest("Log", []api.IngestOp{client.InsertOp("not-an-int", 1)}); err == nil {
		t.Fatal("type-mismatched insert succeeded")
	}
	// A bad value whose text mentions "wal:" is still the client's fault:
	// status classification goes by error identity, not message substrings.
	_, err = cl.Ingest("Log", []api.IngestOp{client.InsertOp("wal: not-an-int", 1)})
	if ae, ok := err.(*client.APIError); !ok || ae.StatusCode != 400 {
		t.Fatalf("validation error misclassified: %v, want 400", err)
	}
	if _, err := cl.Ingest("Log", []api.IngestOp{client.InsertOp(1)}); err == nil {
		t.Fatal("arity-mismatched insert succeeded")
	}
}

// TestIngestDurableCrashRestart is the end-to-end crash test: ingest over
// HTTP with a durable log, crash-stop the log (as kill -9 would), restart
// against a freshly re-loaded dataset, and require every acknowledged op
// to come back — staged exactly once.
func TestIngestDurableCrashRestart(t *testing.T) {
	dir := t.TempDir()
	d := ingestDB(t, 10, 100)
	lg, rs, err := svc.AttachDurableLog(d, dir, svc.DurableLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Records != 0 {
		t.Fatalf("fresh dir recovered %d records", rs.Records)
	}
	srv, cl := startServer(t, d, Config{})

	resp, err := cl.Ingest("Log", []api.IngestOp{
		client.InsertOp(5000, 1),
		client.InsertOp(5001, 2),
		client.DeleteOp(7),
		client.UpdateOp(8, 9),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Durable || resp.DurableSeq < 4 {
		t.Fatalf("resp = %+v, want durable with synced seq ≥ 4", resp)
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.WAL == nil {
		t.Fatal("stats missing WAL block despite attached log")
	}
	if st.WAL.SyncedSeq < 4 || st.WAL.Appends < 4 || st.WAL.UnappliedRecords < 4 {
		t.Fatalf("WAL stats = %+v, want ≥ 4 synced appends pending replay", st.WAL)
	}
	if st.Ingested != 4 {
		t.Fatalf("Ingested = %d, want 4", st.Ingested)
	}

	wantIns, wantDel := d.Table("Log").PendingSize()

	// Crash: no flush, no goodbye. Then a clean server shutdown of the
	// orphaned process state.
	lg.Kill()
	// Staging against the dead log is a server-side durability failure
	// (500), not a client error — and stages nothing.
	_, err = cl.Ingest("Log", []api.IngestOp{client.InsertOp(6000, 1)})
	if ae, ok := err.(*client.APIError); !ok || ae.StatusCode != 500 {
		t.Fatalf("ingest on killed log = %v, want 500", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)

	// Restart: same dataset load, fresh log open, replay.
	d2 := ingestDB(t, 10, 100)
	lg2, rs2, err := svc.AttachDurableLog(d2, dir, svc.DurableLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	if rs2.Records != 4 || rs2.PendingRecords != 4 {
		t.Fatalf("recovery = %+v, want 4 records all pending", rs2)
	}
	ins, del := d2.Table("Log").PendingSize()
	if ins != wantIns || del != wantDel {
		t.Fatalf("recovered pending (ins,del) = (%d,%d), want (%d,%d)", ins, del, wantIns, wantDel)
	}
	for _, id := range []int64{5000, 5001} {
		if _, ok := d2.Table("Log").Insertions().Get(svc.Int(id)); !ok {
			t.Fatalf("acknowledged insert %d lost across crash", id)
		}
	}
	// Maintenance after recovery folds the replayed deltas exactly once.
	if err := d2.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	if _, ok := d2.Table("Log").Rows().Get(svc.Int(5000)); !ok {
		t.Fatal("replayed insert did not fold into the base table")
	}
	if _, ok := d2.Table("Log").Rows().Get(svc.Int(7)); ok {
		t.Fatal("replayed delete did not fold into the base table")
	}
}

// TestIngestBackpressureShed drives the log past a tiny unapplied-depth
// bound and requires the ingest path to shed with 503 (retryable, nothing
// staged) until maintenance retires the backlog.
func TestIngestBackpressureShed(t *testing.T) {
	dir := t.TempDir()
	d := ingestDB(t, 10, 100)
	lg, _, err := svc.AttachDurableLog(d, dir, svc.DurableLogOptions{MaxUnappliedBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	_, cl := startServer(t, d, Config{})

	if _, err := cl.Ingest("Log", []api.IngestOp{client.InsertOp(9000, 1)}); err != nil {
		t.Fatal(err)
	}
	_, err = cl.Ingest("Log", []api.IngestOp{client.InsertOp(9001, 1)})
	if !client.IsOverloaded(err) {
		t.Fatalf("ingest over the depth bound = %v, want 503 overloaded", err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.IngestShed < 1 {
		t.Fatalf("IngestShed = %d, want ≥ 1", st.IngestShed)
	}

	// A maintenance boundary retires the backlog; ingest resumes.
	if err := d.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Ingest("Log", []api.IngestOp{client.InsertOp(9002, 1)}); err != nil {
		t.Fatalf("ingest after apply: %v", err)
	}
}
