package bench

import (
	"fmt"
	"time"

	svc "github.com/sampleclean/svc"
	"github.com/sampleclean/svc/internal/algebra"
	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/tpcd"
	"github.com/sampleclean/svc/internal/view"
)

// refresh-sched measures the two halves of the multi-view maintenance
// optimizer:
//
//  1. Shared delta-scan plans: one group cycle over K views sharing a
//     base table vs K independent cycles on the same pinned version. The
//     shared cycle must touch measurably fewer rows — every shared delta
//     subtree is evaluated once and fanned out through the subplan cache.
//
//  2. Error-budget refresh scheduling: under a skewed query mix, the
//     scheduler (spending the same single-view-cycle budget) must yield a
//     lower mean confidence-interval width than fixed-interval
//     round-robin refresh, because it concentrates maintenance where
//     queries actually land.

func init() {
	register("refresh-sched",
		"multi-view optimizer: shared delta-scan cycles + error-budget scheduling vs fixed-interval",
		runRefreshSched)
}

// sharedCycleViews builds K=4 views over lineitem⋈orders on one
// database; all four re-read the same staged deltas during maintenance.
func sharedCycleViews() []view.Definition {
	join := func() algebra.Node {
		return algebra.MustJoin(
			algebra.Scan(tpcd.Lineitem, tpcd.LineitemSchema()),
			algebra.Scan(tpcd.Orders, tpcd.OrdersSchema()),
			algebra.JoinSpec{
				Type:  algebra.Inner,
				On:    []algebra.EqPair{{Left: "l_orderkey", Right: "o_orderkey"}},
				Merge: true,
			},
		)
	}
	windowed := func() algebra.Node {
		return algebra.MustSelect(join(), expr.Lt(expr.Col("o_orderdate"), expr.IntLit(270)))
	}
	return []view.Definition{
		tpcd.JoinView(),
		{Name: "revByOrder", Plan: algebra.MustGroupBy(windowed(),
			[]string{"l_orderkey"}, algebra.CountAs("cnt"), algebra.SumAs(tpcd.Revenue(), "revenue"))},
		{Name: "qtyByPriority", Plan: algebra.MustGroupBy(windowed(),
			[]string{"o_orderpriority"}, algebra.CountAs("cnt"), algebra.SumAs(expr.Col("l_quantity"), "totalQty"))},
		{Name: "revByDate", Plan: algebra.MustGroupBy(join(),
			[]string{"o_orderdate"}, algebra.CountAs("cnt"), algebra.SumAs(tpcd.Revenue(), "revenue"))},
	}
}

// runSharedCycle returns (independent rows, shared rows, hits, rowsSaved).
func runSharedCycle(s Scale) (int64, int64, uint64, int64, error) {
	gen := tpcd.NewGenerator(tpcdConfig(s, 2, 42))
	d, err := gen.Generate()
	if err != nil {
		return 0, 0, 0, 0, err
	}
	d.SetParallelism(defaultParallelism)
	d.SetColumnar(defaultColumnar)
	views := make([]*view.View, 0, 4)
	maints := make([]*view.Maintainer, 0, 4)
	for _, def := range sharedCycleViews() {
		v, err := view.Materialize(d, def)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		m, err := view.NewMaintainer(v)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		views = append(views, v)
		maints = append(maints, m)
	}
	if err := gen.StageUpdates(d, 0.2); err != nil {
		return 0, 0, 0, 0, err
	}
	pin := d.Pin()
	var indep int64
	for i, m := range maints {
		_, st, err := m.MaintainAt(pin, views[i].Data())
		if err != nil {
			return 0, 0, 0, 0, err
		}
		indep += st.RowsTouched
	}
	cache := algebra.NewSubplanCache(pin.Epoch())
	defer cache.Release()
	var shared int64
	for i, m := range maints {
		_, st, err := m.MaintainAtShared(pin, views[i].Data(), cache)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		shared += st.RowsTouched
	}
	hits, _, saved := cache.Stats()
	return indep, shared, hits, saved, nil
}

// schedArena is the two-view skewed-mix serving scenario, built
// identically for each refresh policy so the comparison is apples to
// apples (same data, same ingest, same query mix, same cycle budget).
type schedArena struct {
	d        *svc.Database
	hotT     *svc.Table
	coldT    *svc.Table
	hot, cld *svc.StaleView
	sched    *svc.Scheduler
	now      time.Time
	hotKey   int64
	coldKey  int64
}

func newSchedArena(s Scale, withSched bool) (*schedArena, error) {
	a := &schedArena{now: time.Unix(1_000_000, 0), hotKey: 1_000_000, coldKey: 5_000_000}
	a.d = svc.NewDatabase()
	mk := func(name string, rows int) *svc.Table {
		tb := a.d.MustCreate(name, svc.NewSchema([]svc.Column{
			svc.Col("id", svc.KindInt),
			svc.Col("grp", svc.KindInt),
			svc.Col("val", svc.KindFloat),
		}, "id"))
		for i := 0; i < rows; i++ {
			tb.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(int64(i % 10)), svc.Float(float64(i%97) / 7)})
		}
		return tb
	}
	rows := int(2000 * float64(s))
	if rows < 400 {
		rows = 400
	}
	a.hotT = mk("HotT", rows)
	a.coldT = mk("ColdT", rows/4)
	if withSched {
		a.sched = svc.NewScheduler(a.d, svc.SchedulerConfig{
			Budget: 1,
			Now:    func() time.Time { return a.now },
		})
	}
	mkView := func(name, table string, tb *svc.Table) (*svc.StaleView, error) {
		opts := []svc.Option{svc.WithSamplingRatio(0.3)}
		if a.sched != nil {
			opts = append(opts, svc.WithScheduler(a.sched))
		}
		return svc.New(a.d, svc.ViewDefinition{Name: name, Plan: svc.GroupByAgg(
			svc.Scan(table, tb.Schema()),
			[]string{"grp"},
			svc.CountAs("cnt"),
			svc.SumAs(svc.ColRef("val"), "total"),
		)}, opts...)
	}
	var err error
	if a.hot, err = mkView("hotView", "HotT", a.hotT); err != nil {
		return nil, err
	}
	if a.cld, err = mkView("coldView", "ColdT", a.coldT); err != nil {
		return nil, err
	}
	return a, nil
}

// ingestTick stages one tick of skewed updates: the hot table takes 9×
// the cold table's volume.
func (a *schedArena) ingestTick(s Scale) error {
	n := int(90 * float64(s))
	if n < 30 {
		n = 30
	}
	for i := 0; i < n; i++ {
		a.hotKey++
		if err := a.hotT.StageInsert(svc.Row{svc.Int(a.hotKey), svc.Int(a.hotKey % 10), svc.Float(1)}); err != nil {
			return err
		}
	}
	for i := 0; i < n/9; i++ {
		a.coldKey++
		if err := a.coldT.StageInsert(svc.Row{svc.Int(a.coldKey), svc.Int(a.coldKey % 10), svc.Float(1)}); err != nil {
			return err
		}
	}
	return nil
}

// queryMix runs the 9:1 skewed query mix once and returns the summed CI
// widths and the query count.
func (a *schedArena) queryMix() (float64, int, error) {
	var width float64
	count := 0
	for i := 0; i < 9; i++ {
		ans, err := a.hot.Query(svc.Sum("total", nil))
		if err != nil {
			return 0, 0, err
		}
		width += ans.Hi - ans.Lo
		count++
	}
	ans, err := a.cld.Query(svc.Sum("total", nil))
	if err != nil {
		return 0, 0, err
	}
	width += ans.Hi - ans.Lo
	count++
	return width, count, nil
}

// runRefreshPolicy drives `ticks` rounds of ingest+queries under one
// refresh policy. Both policies spend exactly one single-view maintenance
// cycle per tick: fixed-interval round-robins the views; the scheduler
// picks by expected-error reduction. Returns (mean CI width, maintenance
// rows touched).
func runRefreshPolicy(s Scale, withSched bool, ticks int) (float64, int64, error) {
	a, err := newSchedArena(s, withSched)
	if err != nil {
		return 0, 0, err
	}
	views := []*svc.StaleView{a.hot, a.cld}
	var totalWidth float64
	var queries int
	var rows int64
	for tick := 0; tick < ticks; tick++ {
		if err := a.ingestTick(s); err != nil {
			return 0, 0, err
		}
		a.now = a.now.Add(time.Second)
		var st svc.GroupStats
		if withSched {
			st, err = a.sched.TickNow()
		} else {
			// Fixed-interval refresh of K views at interval I is each view
			// every K·I: round-robin, one cycle per tick. MaintainViews
			// with a single view folds only that view's tables, so the
			// other view's deltas stay intact — same guarantee the
			// scheduler's group cycles give.
			st, err = svc.MaintainViews(views[tick%len(views)])
		}
		if err != nil {
			return 0, 0, err
		}
		rows += st.RowsTouched
		w, n, err := a.queryMix()
		if err != nil {
			return 0, 0, err
		}
		totalWidth += w
		queries += n
	}
	return totalWidth / float64(queries), rows, nil
}

func runRefreshSched(s Scale) (*Table, error) {
	indep, shared, hits, saved, err := runSharedCycle(s)
	if err != nil {
		return nil, fmt.Errorf("shared cycle: %w", err)
	}
	const ticks = 24
	fixedW, fixedRows, err := runRefreshPolicy(s, false, ticks)
	if err != nil {
		return nil, fmt.Errorf("fixed-interval policy: %w", err)
	}
	schedW, schedRows, err := runRefreshPolicy(s, true, ticks)
	if err != nil {
		return nil, fmt.Errorf("scheduler policy: %w", err)
	}
	t := &Table{
		ID:     "refresh-sched",
		Title:  "Multi-view maintenance optimizer: shared cycles and error-budget scheduling",
		Header: []string{"experiment", "metric", "value"},
		Notes: []string{
			"shared-cycle: K=4 views over lineitem⋈orders, one pinned version, one subplan cache",
			fmt.Sprintf("refresh-policy: %d ticks, 9:1 query/ingest skew, 1 single-view cycle per tick for both policies", ticks),
		},
	}
	t.AddRow("shared-cycle", "independent_rows", indep)
	t.AddRow("shared-cycle", "shared_rows", shared)
	t.AddRow("shared-cycle", "shared_hits", hits)
	t.AddRow("shared-cycle", "rows_saved", saved)
	t.AddRow("refresh-policy", "fixed_mean_ci_width", fmt.Sprintf("%.4f", fixedW))
	t.AddRow("refresh-policy", "sched_mean_ci_width", fmt.Sprintf("%.4f", schedW))
	t.AddRow("refresh-policy", "fixed_rows_touched", fixedRows)
	t.AddRow("refresh-policy", "sched_rows_touched", schedRows)
	return t, nil
}
