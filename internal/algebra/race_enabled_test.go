//go:build race

package algebra

// raceEnabled reports that the race detector instruments this build; the
// zero-allocs guard is skipped there (instrumentation allocates and
// sync.Pool intentionally drops entries under -race).
const raceEnabled = true
