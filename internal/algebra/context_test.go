package algebra

import (
	"reflect"
	"testing"

	"github.com/sampleclean/svc/internal/relation"
)

// workerCtx must copy the parent wholesale and then override exactly
// {Parallelism → 1, RowsTouched → 0}. The historical bug was the inverse:
// workers hand-rolled a fresh Context and enumerated fields, so a new
// knob (e.g. NoColumnar) silently reset to its zero value inside parallel
// drains only. This test walks Context by reflection: every field must be
// either explicitly listed as an override or copied verbatim, and any
// field added to Context later fails the test until it is classified
// here.
func TestWorkerCtxThreadsEveryField(t *testing.T) {
	// Fields workerCtx deliberately overrides, with their expected values
	// in the worker copy.
	overrides := map[string]any{
		"Parallelism": 1,
		"RowsTouched": int64(0),
	}
	// Fields known to copy through. When this test fails with an
	// unclassified field, decide whether the new field is an override or
	// a plain copy and add it to the matching map — then make sure
	// workerCtx agrees.
	copied := map[string]bool{
		"rels":       true,
		"NoColumnar": true,
		"Epoch":      true,
		"Subplans":   true,
	}

	parent := NewContext(map[string]*relation.Relation{})
	// Drive every field to a non-zero value so "copied" is distinguishable
	// from "reset to zero".
	parent.RowsTouched = 99
	parent.Parallelism = 8
	parent.NoColumnar = true
	parent.Epoch = 7
	parent.Subplans = NewSubplanCache(7)

	worker := parent.workerCtx()

	pv := reflect.ValueOf(parent).Elem()
	wv := reflect.ValueOf(worker).Elem()
	typ := pv.Type()
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		pf, wf := pv.Field(i), wv.Field(i)
		if want, ok := overrides[f.Name]; ok {
			got := valueOf(wf)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("workerCtx: override field %s = %v, want %v", f.Name, got, want)
			}
			continue
		}
		if !copied[f.Name] {
			t.Errorf("Context field %q is not classified in TestWorkerCtxThreadsEveryField: "+
				"add it to the overrides or copied map AND thread it through workerCtx "+
				"(copying the parent struct does this automatically)", f.Name)
			continue
		}
		if !reflect.DeepEqual(valueOf(pf), valueOf(wf)) {
			t.Errorf("workerCtx: field %s not copied: parent %v, worker %v",
				f.Name, valueOf(pf), valueOf(wf))
		}
		// Non-zero check guards the test itself: a field left at its zero
		// value in the fixture can't tell copy from reset.
		if pf.IsZero() {
			t.Errorf("test fixture leaves Context field %s at its zero value; "+
				"set it non-zero above so a reset would be caught", f.Name)
		}
	}
}

// valueOf reads a struct field even when it is unexported.
func valueOf(f reflect.Value) any {
	if f.CanInterface() {
		return f.Interface()
	}
	switch f.Kind() {
	case reflect.Map:
		return f.Pointer()
	case reflect.Ptr, reflect.UnsafePointer:
		return f.Pointer()
	default:
		return reflect.NewAt(f.Type(), nil) // unreachable for current fields
	}
}

// The rels map is shared (workers may Bind-free read the same base
// relations); RowsTouched is merged back by callers.
func TestWorkerCtxSharesRelations(t *testing.T) {
	rel := relation.New(relation.NewSchema([]relation.Column{{Name: "a"}}))
	parent := NewContext(map[string]*relation.Relation{"R": rel})
	worker := parent.workerCtx()
	got, err := worker.Relation("R")
	if err != nil {
		t.Fatal(err)
	}
	if got != rel {
		t.Fatal("workerCtx does not share the parent's relation bindings")
	}
	if worker.Parallelism != 1 || worker.RowsTouched != 0 {
		t.Fatalf("workerCtx overrides wrong: Parallelism=%d RowsTouched=%d",
			worker.Parallelism, worker.RowsTouched)
	}
}
