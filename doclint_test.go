package svc_test

// Doc lint: every engine package must carry a package-level doc.go stating
// its paper-section correspondence and its concurrency contract, so godoc
// is the architecture document. CI runs this via `go test`; the rules:
//
//   - internal/*, server, server/api, client each have a doc.go whose
//     package comment starts "Package <name>";
//   - internal packages' doc.go mentions the paper (section/figure/
//     appendix correspondence) and the package's concurrency contract;
//   - no other non-test file in those packages carries a package comment
//     (doc.go is the single home, so the two can't drift apart).

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var (
	paperRe  = regexp.MustCompile(`(?i)(section|figure|appendix|paper)`)
	concurRe = regexp.MustCompile(`(?i)concurren`)
)

func TestPackageDocs(t *testing.T) {
	dirs := []string{"server", "server/api", "client"}
	entries, err := os.ReadDir("internal")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, filepath.Join("internal", e.Name()))
		}
	}
	for _, dir := range dirs {
		docPath := filepath.Join(dir, "doc.go")
		raw, err := os.ReadFile(docPath)
		if err != nil {
			t.Errorf("%s: missing doc.go (every package documents its paper correspondence and concurrency contract there): %v", dir, err)
			continue
		}
		doc := string(raw)
		pkg := filepath.Base(dir)
		if !strings.HasPrefix(doc, "// Package "+pkg+" ") {
			t.Errorf("%s: doc.go must open with %q", dir, "// Package "+pkg+" ...")
		}
		if !strings.Contains(doc, "\npackage "+pkg+"\n") {
			t.Errorf("%s: doc.go must declare package %s with the comment attached", dir, pkg)
		}
		if strings.HasPrefix(dir, "internal"+string(filepath.Separator)) && !paperRe.MatchString(doc) {
			t.Errorf("%s: doc.go must state the package's paper-section correspondence", dir)
		}
		if !concurRe.MatchString(doc) {
			t.Errorf("%s: doc.go must state the package's concurrency contract", dir)
		}

		// doc.go is the single home of the package comment.
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			if filepath.Base(f) == "doc.go" || strings.HasSuffix(f, "_test.go") {
				continue
			}
			raw, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			lines := strings.Split(string(raw), "\n")
			for i, line := range lines {
				if strings.HasPrefix(line, "package ") {
					if i > 0 && strings.HasPrefix(lines[i-1], "//") {
						t.Errorf("%s: carries a package comment; move it into %s (detach file comments with a blank line)", f, docPath)
					}
					break
				}
			}
		}
	}
}
