package clean_test

// Property/fuzz test for the Correspondence property (Proposition 2) on
// the paper's Fig. 4a workload: the lineitem⋈orders join view over random
// delta batches. For ANY batch of staged inserts/updates/deletes, the
// pushed-down cleaned sample Ŝ′ must equal η applied to the fully
// maintained view S′ — exactly, row for row — under BOTH maintenance
// strategies (change-table IVM and recompute). This is Theorem 1 stated
// as an executable property.

import (
	"math"
	"math/rand"
	"testing"

	"github.com/sampleclean/svc/internal/algebra"
	"github.com/sampleclean/svc/internal/clean"
	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/tpcd"
	"github.com/sampleclean/svc/internal/view"
)

const corrRatio = 0.25

// rowsAlmostEq compares rows with relative float tolerance (incremental
// maintenance sums floats in a different order than recomputation).
func rowsAlmostEq(a, b relation.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind() == relation.KindFloat || b[i].Kind() == relation.KindFloat {
			x, y := a[i].AsFloat(), b[i].AsFloat()
			diff, scale := math.Abs(x-y), math.Max(math.Abs(x), math.Abs(y))
			if diff > 1e-9*math.Max(scale, 1) {
				return false
			}
			continue
		}
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// stageRandomBatch stages a random mix of order/lineitem inserts, updates,
// and deletes sized and shaped by the seed.
func stageRandomBatch(t testing.TB, g *tpcd.Generator, d *db.Database, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed * 7919))
	// Generator-driven inserts and updates (the TPC-D refresh stream).
	frac := 0.02 + 0.12*rng.Float64()
	if err := g.StageUpdates(d, frac); err != nil {
		t.Fatal(err)
	}
	// Deletes, which the generator's refresh stream does not produce:
	// random existing lineitems, and occasionally a whole order.
	lt := d.Table(tpcd.Lineitem)
	ot := d.Table(tpcd.Orders)
	nDel := rng.Intn(1 + lt.Len()/20)
	for i := 0; i < nDel; i++ {
		row := lt.Rows().Row(rng.Intn(lt.Len()))
		if err := lt.StageDelete(row[0], row[1]); err != nil {
			// Already deleted this key in the batch: fine, try the next.
			continue
		}
	}
	for i := 0; i < rng.Intn(4); i++ {
		row := ot.Rows().Row(rng.Intn(ot.Len()))
		_ = ot.StageDelete(row[0]) // duplicates in the batch are fine
	}
}

// corrTrial materializes the Fig. 4a join view, stages a random batch,
// cleans with the given strategy, and asserts Ŝ′ == η(S′).
func corrTrial(t testing.TB, seed int64, kind view.StrategyKind) {
	t.Helper()
	g := tpcd.NewGenerator(tpcd.Config{
		Orders: 150, MaxLines: 3, Customers: 40, Suppliers: 10, Parts: 30,
		Z: 2, Days: 90, Seed: seed,
	})
	d, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	v, err := view.Materialize(d, tpcd.JoinView())
	if err != nil {
		t.Fatal(err)
	}
	m, err := view.NewMaintainerWithStrategy(v, kind)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind() != kind {
		t.Fatalf("maintainer kind %v, want %v", m.Kind(), kind)
	}
	c, err := clean.New(m, corrRatio, nil)
	if err != nil {
		t.Fatal(err)
	}
	stageRandomBatch(t, g, d, seed)

	samples, err := c.Clean(d)
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth: apply the deltas on a deep copy and re-materialize.
	snap := d.Snapshot()
	if err := snap.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	fresh, err := view.Materialize(snap, v.Definition())
	if err != nil {
		t.Fatal(err)
	}
	truth := fresh.Data()

	// η(S′) with the same attributes, ratio, and hasher.
	ctx := algebra.NewContext(map[string]*relation.Relation{"T": truth})
	hf := algebra.MustHashFilter(algebra.Scan("T", truth.Schema()), c.SampleAttrs(), corrRatio, c.Hasher())
	want, err := hf.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if samples.Fresh.Len() != want.Len() {
		t.Fatalf("seed %d, %v: Ŝ′ has %d rows, η(S′) has %d", seed, kind, samples.Fresh.Len(), want.Len())
	}
	keyIdx := want.Schema().Key()
	for _, wrow := range want.Rows() {
		grow, ok := samples.Fresh.GetByEncodedKey(wrow.KeyOf(keyIdx))
		if !ok || !rowsAlmostEq(grow, wrow) {
			t.Fatalf("seed %d, %v: η(S′) row %v, Ŝ′ has %v", seed, kind, wrow, grow)
		}
	}

	// And the weaker Property 1 clauses, for a readable failure mode.
	rep := clean.CheckCorrespondence(v.Data(), truth, samples)
	if !rep.Ok() {
		t.Fatalf("seed %d, %v: correspondence violated: %+v", seed, kind, rep)
	}
}

// TestJoinViewCorrespondenceProperty runs the property over a spread of
// random delta batches for both strategies.
func TestJoinViewCorrespondenceProperty(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		corrTrial(t, seed, view.ChangeTable)
		corrTrial(t, seed, view.Recompute)
	}
}

// TestJoinViewAutoPicksChangeTable pins that the Fig. 4a SPJ view gets
// change-table maintenance from the automatic chooser (the property test
// above would silently test recompute twice otherwise).
func TestJoinViewAutoPicksChangeTable(t *testing.T) {
	g := tpcd.NewGenerator(tpcd.Config{Orders: 40, MaxLines: 2, Customers: 10, Suppliers: 5, Parts: 10, Z: 2, Days: 30, Seed: 3})
	d, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	v, err := view.Materialize(d, tpcd.JoinView())
	if err != nil {
		t.Fatal(err)
	}
	m, err := view.NewMaintainer(v)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind() != view.ChangeTable {
		t.Fatalf("auto strategy = %v, want change-table", m.Kind())
	}
}

// FuzzJoinViewCorrespondence lets the fuzzer search for a delta batch that
// breaks the Correspondence property under either strategy. The seed
// corpus replays in plain `go test` runs.
func FuzzJoinViewCorrespondence(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1337} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		corrTrial(t, seed, view.ChangeTable)
		corrTrial(t, seed, view.Recompute)
	})
}
