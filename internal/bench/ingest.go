package bench

// This file implements the "ingest" experiment: durable streaming ingest
// throughput against the write-ahead maintenance log at different
// group-commit settings. Every StageInsert is acknowledged only after its
// record is fsynced, so the sync interval is the knob that trades
// per-record latency for group-commit batching: fsync-per-commit shows
// the floor, 1ms/5ms intervals show how coalescing amortizes the fsync
// across concurrent writers. A background applier folds maintenance
// boundaries so the unapplied backlog (what a crash would replay) stays
// bounded — backpressure stalls, if any, are reported.

import (
	"fmt"
	"os"
	"sync"
	"time"

	svc "github.com/sampleclean/svc"
)

func init() {
	register("ingest",
		"durable ingest: write-ahead log throughput and sync latency per group-commit interval",
		ingest)
}

func ingest(s Scale) (*Table, error) {
	t := &Table{
		ID:    "ingest",
		Title: "Durable ingest: group-commit interval vs throughput and fsync latency",
		Header: []string{
			"sync", "writers", "records", "recs_per_sec",
			"mean_sync_ms", "p99_sync_ms", "syncs", "boundaries", "stalls", "wal_kb",
		},
	}
	records := int(4000 * float64(s))
	if records < 400 {
		records = 400
	}
	const writers = 4
	settings := []struct {
		name     string
		interval time.Duration
	}{
		{"each-commit", svc.SyncEachCommit},
		{"1ms", time.Millisecond},
		{"5ms", 5 * time.Millisecond},
	}
	for _, set := range settings {
		if err := ingestOne(t, set.name, set.interval, records, writers); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"acknowledged = fsynced: each-commit pays one fsync per record; an interval batches every record in its window into one fsync",
		"with few writers an interval also caps each writer at one ack per window — throughput there measures the commit cadence, not the disk",
		fmt.Sprintf("%d writers staging concurrently; a background applier folds boundaries every 2ms", writers))
	return t, nil
}

func ingestOne(t *Table, name string, interval time.Duration, records, writers int) error {
	dir, err := os.MkdirTemp("", "svc-bench-ingest-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	d := svc.NewDatabase()
	events := d.MustCreate("events", svc.NewSchema([]svc.Column{
		svc.Col("id", svc.KindInt),
		svc.Col("source", svc.KindString),
		svc.Col("val", svc.KindFloat),
	}, "id"))
	lg, _, err := svc.AttachDurableLog(d, dir, svc.DurableLogOptions{SyncInterval: interval})
	if err != nil {
		return err
	}

	stop := make(chan struct{})
	applierDone := make(chan struct{})
	go func() {
		defer close(applierDone)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				_ = d.ApplyDeltas()
			}
		}
	}()

	per := records / writers
	errs := make(chan error, writers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := int64(w*per + i)
				if err := events.StageInsert(svc.Row{
					svc.Int(id), svc.Str(fmt.Sprintf("w%d", w)), svc.Float(float64(i)),
				}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	<-applierDone
	select {
	case err := <-errs:
		lg.Close()
		return err
	default:
	}

	staged := per * writers
	st := lg.Stats()
	t.AddRow(name, writers, staged,
		float64(staged)/elapsed.Seconds(),
		st.MeanSyncMillis, st.P99SyncMillis, st.Syncs, st.Boundaries, st.Stalls,
		float64(st.DiskBytes)/1024)
	return lg.Close()
}
