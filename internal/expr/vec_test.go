package expr

import (
	"math/rand"
	"testing"

	"github.com/sampleclean/svc/internal/relation"
)

// Property: EvalVec(e) cell k must equal e.Eval(row_k) for every
// expression shape over every input — homogeneous columns, NULL-laden
// columns, and mixed-kind columns, with and without a selection vector.

// vecSchema is the test schema: enough kinds to hit every fast path.
func vecSchema() relation.Schema {
	return relation.NewSchema([]relation.Column{
		{Name: "i", Type: relation.KindInt},
		{Name: "j", Type: relation.KindInt},
		{Name: "f", Type: relation.KindFloat},
		{Name: "g", Type: relation.KindFloat},
		{Name: "s", Type: relation.KindString},
		{Name: "b", Type: relation.KindBool},
		{Name: "m", Type: relation.KindNull}, // mixed column
	})
}

func randValue(rng *rand.Rand, col int) relation.Value {
	if rng.Intn(6) == 0 {
		return relation.Null()
	}
	switch col {
	case 0, 1:
		return relation.Int(int64(rng.Intn(40) - 20))
	case 2, 3:
		return relation.Float(float64(rng.Intn(80))/4 - 10)
	case 4:
		return relation.String(string(rune('a' + rng.Intn(6))))
	case 5:
		return relation.Bool(rng.Intn(2) == 0)
	default: // mixed
		switch rng.Intn(4) {
		case 0:
			return relation.Int(int64(rng.Intn(10)))
		case 1:
			return relation.Float(float64(rng.Intn(10)) / 2)
		case 2:
			return relation.String("x")
		default:
			return relation.Bool(true)
		}
	}
}

// randExpr generates a random expression over vecSchema.
func randExpr(rng *rand.Rand, depth int) Expr {
	cols := []string{"i", "j", "f", "g", "s", "b", "m"}
	leaf := func() Expr {
		switch rng.Intn(4) {
		case 0:
			return Col(cols[rng.Intn(len(cols))])
		case 1:
			return IntLit(int64(rng.Intn(20) - 10))
		case 2:
			return FloatLit(float64(rng.Intn(20)) / 3)
		default:
			return StringLit(string(rune('a' + rng.Intn(6))))
		}
	}
	if depth <= 0 {
		return leaf()
	}
	sub := func() Expr { return randExpr(rng, depth-1) }
	switch rng.Intn(12) {
	case 0:
		return Add(sub(), sub())
	case 1:
		return Sub(sub(), sub())
	case 2:
		return Mul(sub(), sub())
	case 3:
		return Div(sub(), sub())
	case 4:
		ops := []func(Expr, Expr) Expr{Eq, Ne, Lt, Le, Gt, Ge}
		return ops[rng.Intn(len(ops))](sub(), sub())
	case 5:
		return And(sub(), sub())
	case 6:
		return Or(sub(), sub(), sub())
	case 7:
		return Not(sub())
	case 8:
		return Coalesce(sub(), sub())
	case 9:
		return IsNull(sub())
	case 10:
		return If(sub(), sub(), sub())
	default:
		switch rng.Intn(4) {
		case 0:
			return Func("abs", sub())
		case 1:
			return Func("mod", sub(), IntLit(int64(1+rng.Intn(5))))
		case 2:
			return Func("toint", sub())
		default:
			return Func("concat", StringLit("p"), sub())
		}
	}
}

// batchOf gathers rows into a columnar batch (schema order).
func batchOf(rows []relation.Row, width int) *relation.Batch {
	b := relation.GetBatch()
	b.BeginColumnar(width)
	for c := 0; c < width; c++ {
		for _, r := range rows {
			b.Vec(c).AppendValue(r[c])
		}
	}
	return b
}

func TestEvalVecMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sch := vecSchema()
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(150)
		rows := make([]relation.Row, n)
		for i := range rows {
			rows[i] = make(relation.Row, sch.NumCols())
			for c := range rows[i] {
				rows[i][c] = randValue(rng, c)
			}
		}
		e := randExpr(rng, 1+rng.Intn(3))
		if !CanVec(e) {
			t.Fatalf("generator produced a non-vectorizable expression: %s", e)
		}
		bound, err := e.Bind(sch)
		if err != nil {
			t.Fatalf("bind %s: %v", e, err)
		}
		b := batchOf(rows, sch.NumCols())

		var sel []int32
		if trial%2 == 0 {
			for i := 0; i < n; i++ {
				if rng.Intn(3) > 0 {
					sel = append(sel, int32(i))
				}
			}
		}
		out := relation.GetVec()
		EvalVec(bound, b, sel, out)
		wantLen := n
		if sel != nil {
			wantLen = len(sel)
		}
		if out.Len() != wantLen {
			t.Fatalf("%s: EvalVec produced %d cells, want %d", e, out.Len(), wantLen)
		}
		for k := 0; k < wantLen; k++ {
			phys := k
			if sel != nil {
				phys = int(sel[k])
			}
			want := bound.Eval(rows[phys])
			got := out.Value(k)
			if got.Kind() != want.Kind() || !got.KeyEqual(want) {
				t.Fatalf("%s row %v:\n got %v (%v)\nwant %v (%v)",
					e, rows[phys], got, got.Kind(), want, want.Kind())
			}
		}
		// FilterVec must keep exactly the rows whose scalar result is
		// truthy (selection-vector filtering ≡ row compaction).
		fsel := b.SelIdentity(n)
		fsel = FilterVec(bound, b, fsel)
		var wantKept []int32
		for i := 0; i < n; i++ {
			if bound.Eval(rows[i]).AsBool() {
				wantKept = append(wantKept, int32(i))
			}
		}
		if len(fsel) != len(wantKept) {
			t.Fatalf("%s: FilterVec kept %d rows, scalar kept %d", e, len(fsel), len(wantKept))
		}
		for k := range fsel {
			if fsel[k] != wantKept[k] {
				t.Fatalf("%s: FilterVec sel[%d]=%d, scalar kept %d", e, k, fsel[k], wantKept[k])
			}
		}
		relation.PutVec(out)
		b.Release()
	}
}

// FuzzEvalVecEquivalence drives the same property from fuzzed seeds.
func FuzzEvalVecEquivalence(f *testing.F) {
	for _, seed := range []int64{1, 7, 1234, 99999} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		sch := vecSchema()
		n := 1 + rng.Intn(80)
		rows := make([]relation.Row, n)
		for i := range rows {
			rows[i] = make(relation.Row, sch.NumCols())
			for c := range rows[i] {
				rows[i][c] = randValue(rng, c)
			}
		}
		e := randExpr(rng, 2)
		bound, err := e.Bind(sch)
		if err != nil {
			t.Skip()
		}
		b := batchOf(rows, sch.NumCols())
		defer b.Release()
		out := relation.GetVec()
		defer relation.PutVec(out)
		EvalVec(bound, b, nil, out)
		for i := 0; i < n; i++ {
			want := bound.Eval(rows[i])
			got := out.Value(i)
			if got.Kind() != want.Kind() || !got.KeyEqual(want) {
				t.Fatalf("%s row %v: got %v (%v), want %v (%v)",
					e, rows[i], got, got.Kind(), want, want.Kind())
			}
		}
	})
}
