package db

import (
	"testing"
	"testing/quick"

	"github.com/sampleclean/svc/internal/relation"
)

func logSchema() relation.Schema {
	return relation.NewSchema([]relation.Column{
		{Name: "sessionId", Type: relation.KindInt},
		{Name: "videoId", Type: relation.KindInt},
	}, "sessionId")
}

func newLogDB(t *testing.T) (*Database, *Table) {
	t.Helper()
	d := New()
	tab, err := d.Create("Log", logSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		tab.MustInsert(relation.Row{relation.Int(i), relation.Int(i % 3)})
	}
	return d, tab
}

func TestCreateValidation(t *testing.T) {
	d := New()
	if _, err := d.Create("Log", logSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Create("Log", logSchema()); err == nil {
		t.Error("duplicate create should fail")
	}
	keyless := relation.NewSchema([]relation.Column{{Name: "x", Type: relation.KindInt}})
	if _, err := d.Create("K", keyless); err == nil {
		t.Error("keyless table should be rejected")
	}
	if d.Table("Nope") != nil {
		t.Error("unknown table should be nil")
	}
	if got := d.Tables(); len(got) != 1 || got[0] != "Log" {
		t.Errorf("Tables = %v", got)
	}
}

func TestForeignKeys(t *testing.T) {
	d, _ := newLogDB(t)
	video := relation.NewSchema([]relation.Column{
		{Name: "videoId", Type: relation.KindInt},
	}, "videoId")
	d.MustCreate("Video", video)
	if err := d.AddForeignKey("Log", "videoId", "Video"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddForeignKey("Nope", "videoId", "Video"); err == nil {
		t.Error("unknown table should fail")
	}
	if err := d.AddForeignKey("Log", "nope", "Video"); err == nil {
		t.Error("unknown column should fail")
	}
	if err := d.AddForeignKey("Log", "videoId", "Nope"); err == nil {
		t.Error("unknown ref table should fail")
	}
	if got := d.ForeignKeys(); len(got) != 1 || got[0].RefTable != "Video" {
		t.Errorf("ForeignKeys = %v", got)
	}
}

func TestStagingLifecycle(t *testing.T) {
	d, tab := newLogDB(t)
	if d.HasPending() {
		t.Fatal("fresh db should have no pending deltas")
	}
	// Insert a new record.
	if err := tab.StageInsert(relation.Row{relation.Int(100), relation.Int(1)}); err != nil {
		t.Fatal(err)
	}
	// Inserting an existing key must be rejected.
	if err := tab.StageInsert(relation.Row{relation.Int(5), relation.Int(1)}); err == nil {
		t.Error("staged insert of existing key should fail")
	}
	// Update an existing record.
	if err := tab.StageUpdate(relation.Row{relation.Int(5), relation.Int(99)}); err != nil {
		t.Fatal(err)
	}
	// Delete an existing record.
	if err := tab.StageDelete(relation.Int(7)); err != nil {
		t.Fatal(err)
	}
	if err := tab.StageDelete(relation.Int(777)); err == nil {
		t.Error("delete of unknown key should fail")
	}
	if !d.HasPending() {
		t.Fatal("db should report pending deltas")
	}
	ins, del := tab.PendingSize()
	if ins != 2 || del != 2 {
		t.Fatalf("pending = %d ins, %d del", ins, del)
	}
	// Base is untouched until ApplyDeltas — the view over it is stale.
	if tab.Len() != 10 {
		t.Fatalf("base mutated early: %d", tab.Len())
	}
	if err := d.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	if d.HasPending() {
		t.Error("deltas should be cleared")
	}
	// 10 - 1 delete + 1 insert = 10 (update replaces in place).
	if tab.Len() != 10 {
		t.Fatalf("after apply: %d rows", tab.Len())
	}
	row, ok := tab.Rows().Get(relation.Int(5))
	if !ok || row[1].AsInt() != 99 {
		t.Errorf("update not applied: %v", row)
	}
	if _, ok := tab.Rows().Get(relation.Int(7)); ok {
		t.Error("delete not applied")
	}
	if _, ok := tab.Rows().Get(relation.Int(100)); !ok {
		t.Error("insert not applied")
	}
}

func TestStageDeleteOfStagedInsert(t *testing.T) {
	_, tab := newLogDB(t)
	if err := tab.StageInsert(relation.Row{relation.Int(55), relation.Int(0)}); err != nil {
		t.Fatal(err)
	}
	if err := tab.StageDelete(relation.Int(55)); err != nil {
		t.Fatalf("deleting a staged insert should un-stage it: %v", err)
	}
	ins, del := tab.PendingSize()
	if ins != 0 || del != 0 {
		t.Errorf("pending after cancel = %d, %d", ins, del)
	}
}

func TestDoubleUpdateKeepsOriginalOldRow(t *testing.T) {
	d, tab := newLogDB(t)
	if err := tab.StageUpdate(relation.Row{relation.Int(3), relation.Int(50)}); err != nil {
		t.Fatal(err)
	}
	if err := tab.StageUpdate(relation.Row{relation.Int(3), relation.Int(60)}); err != nil {
		t.Fatal(err)
	}
	ins, del := tab.PendingSize()
	if ins != 1 || del != 1 {
		t.Fatalf("pending = %d, %d", ins, del)
	}
	old, _ := tab.Deletions().Get(relation.Int(3))
	if old[1].AsInt() != 0 {
		t.Errorf("∇R should hold the original row, got %v", old)
	}
	if err := d.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	row, _ := tab.Rows().Get(relation.Int(3))
	if row[1].AsInt() != 60 {
		t.Errorf("final row = %v", row)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	d, tab := newLogDB(t)
	if err := tab.StageInsert(relation.Row{relation.Int(200), relation.Int(0)}); err != nil {
		t.Fatal(err)
	}
	snap := d.Snapshot()
	if err := d.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	if snap.Table("Log").Len() != 10 {
		t.Error("snapshot base mutated")
	}
	if !snap.HasPending() {
		t.Error("snapshot should keep staged deltas")
	}
	if d.HasPending() {
		t.Error("original should be clean after apply")
	}
}

func TestContextBindings(t *testing.T) {
	d, tab := newLogDB(t)
	if err := tab.StageInsert(relation.Row{relation.Int(300), relation.Int(2)}); err != nil {
		t.Fatal(err)
	}
	ctx := d.Context()
	for _, name := range []string{"Log", InsOf("Log"), DelOf("Log")} {
		if _, err := ctx.Relation(name); err != nil {
			t.Errorf("context missing %q: %v", name, err)
		}
	}
	ins, _ := ctx.Relation(InsOf("Log"))
	if ins.Len() != 1 {
		t.Errorf("ΔLog len = %d", ins.Len())
	}
}

// Property: any sequence of stage-insert/update/delete over fresh keys
// followed by ApplyDeltas produces the same table as applying the
// operations directly.
func TestApplyDeltasEquivalenceQuick(t *testing.T) {
	f := func(ops []uint16) bool {
		d := New()
		tab := d.MustCreate("T", logSchema())
		shadow := map[int64]int64{}
		for i := int64(0); i < 20; i++ {
			tab.MustInsert(relation.Row{relation.Int(i), relation.Int(0)})
			shadow[i] = 0
		}
		nextKey := int64(1000)
		for _, op := range ops {
			k := int64(op % 20)
			switch op % 3 {
			case 0: // insert fresh
				if err := tab.StageInsert(relation.Row{relation.Int(nextKey), relation.Int(int64(op))}); err != nil {
					return false
				}
				shadow[nextKey] = int64(op)
				nextKey++
			case 1: // update existing base row
				if _, ok := shadow[k]; !ok {
					continue
				}
				if err := tab.StageUpdate(relation.Row{relation.Int(k), relation.Int(int64(op))}); err != nil {
					return false
				}
				shadow[k] = int64(op)
			case 2: // delete existing base row (once)
				if _, ok := shadow[k]; !ok {
					continue
				}
				if err := tab.StageDelete(relation.Int(k)); err != nil {
					return false
				}
				delete(shadow, k)
			}
		}
		if err := d.ApplyDeltas(); err != nil {
			return false
		}
		if tab.Len() != len(shadow) {
			return false
		}
		for k, v := range shadow {
			row, ok := tab.Rows().Get(relation.Int(k))
			if !ok || row[1].AsInt() != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEnsureIndex(t *testing.T) {
	d, tab := newLogDB(t)
	if err := d.EnsureIndex("Log", "videoId"); err != nil {
		t.Fatal(err)
	}
	idx := []int{tab.Schema().ColIndex("videoId")}
	if !tab.Rows().HasIndex(idx) {
		t.Fatal("index should be built")
	}
	// Idempotent.
	if err := d.EnsureIndex("Log", "videoId"); err != nil {
		t.Fatal(err)
	}
	// Errors.
	if err := d.EnsureIndex("Nope", "videoId"); err == nil {
		t.Error("unknown table should fail")
	}
	if err := d.EnsureIndex("Log", "zzz"); err == nil {
		t.Error("unknown column should fail")
	}
	// Registered indexes survive ApplyDeltas (rebuilt).
	if err := tab.StageInsert(relation.Row{relation.Int(500), relation.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := d.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	if !tab.Rows().HasIndex(idx) {
		t.Fatal("index should be rebuilt after ApplyDeltas")
	}
	got := tab.Rows().Probe(idx, relation.Row{relation.Int(1)}.KeyOf([]int{0}))
	found := false
	for _, p := range got {
		if tab.Rows().Row(p)[0].AsInt() == 500 {
			found = true
		}
	}
	if !found {
		t.Error("rebuilt index should cover the applied insert")
	}
	// Snapshots carry the registered indexes.
	snap := d.Snapshot()
	if !snap.Table("Log").Rows().HasIndex(idx) {
		t.Error("snapshot should rebuild registered indexes")
	}
}
