package relation

// Row is one tuple. Rows are positional; the schema gives names to the
// positions. Rows are treated as immutable once inserted into a Relation —
// mutate only through Relation methods so the primary-key index stays
// consistent.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row { return append(Row(nil), r...) }

// Equal reports element-wise equality.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// KeyOf encodes the values of the given column indexes into a canonical
// composite key string. The encoding is injective, so two rows produce the
// same key iff all key values are equal.
func (r Row) KeyOf(keyIdx []int) string {
	return string(r.EncodeCols(keyIdx, nil))
}

// EncodeCols appends the canonical encoding of the given columns to dst.
// It is the byte-level input to the deterministic hash sampler.
func (r Row) EncodeCols(keyIdx []int, dst []byte) []byte {
	for _, k := range keyIdx {
		dst = r[k].appendEncoded(dst)
	}
	return dst
}
