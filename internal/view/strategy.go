package view

import (
	"fmt"

	"github.com/sampleclean/svc/internal/algebra"
	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
)

// StrategyKind identifies the maintenance strategy chosen for a view.
type StrategyKind uint8

// Available strategies.
const (
	// ChangeTable is the delta/change-table incremental strategy
	// (paper Example 1; Gupta & Mumick).
	ChangeTable StrategyKind = iota
	// Recompute substitutes (R−∇R)∪ΔR for every base scan — fully
	// general fallback.
	Recompute
)

// String returns the strategy name.
func (k StrategyKind) String() string {
	if k == ChangeTable {
		return "change-table"
	}
	return "recompute"
}

// Maintainer owns the maintenance strategy M(S, D, ∂D) for one view.
//
// The strategy is exposed as a relational expression (Expression) so that
// SVC can push its sampling operator through it; Maintain evaluates it at
// full size — classic deferred IVM.
type Maintainer struct {
	view *View
	kind StrategyKind
	expr algebra.Node
	// evalExpr is the execution form of expr: the same rows, with
	// selections/projections fused into base scans (PushDownScans).
	// Expression() keeps returning expr — the cleaning rewriters
	// (PushDownHash, the sample-scan substitution) pattern-match the
	// unfused operator shapes.
	evalExpr algebra.Node
	// sharedExpr is evalExpr with CachedNodes wrapped around the subtrees
	// a multi-view cycle may share (see MaintainAtShared). Evaluating it
	// without a cache is identical to evalExpr, so it is built eagerly.
	sharedExpr algebra.Node
}

func newMaintainer(v *View, kind StrategyKind, expr algebra.Node) *Maintainer {
	evalExpr := algebra.PushDownScans(expr)
	return &Maintainer{
		view:       v,
		kind:       kind,
		expr:       expr,
		evalExpr:   evalExpr,
		sharedExpr: algebra.CacheSubplans(evalExpr, maintenancePolicy()),
	}
}

// NewMaintainer builds the maintenance expression for the view, choosing
// change-table maintenance when the definition's shape allows it and
// falling back to recompute otherwise.
func NewMaintainer(v *View) (*Maintainer, error) {
	if m, err := buildChangeTable(v); err == nil {
		return newMaintainer(v, ChangeTable, m), nil
	}
	m, err := buildRecompute(v)
	if err != nil {
		return nil, fmt.Errorf("view: %s: no applicable maintenance strategy: %w", v.Name(), err)
	}
	return newMaintainer(v, Recompute, m), nil
}

// NewMaintainerWithStrategy builds the maintenance expression for the
// view with an explicitly chosen strategy, erroring when the view's shape
// does not admit it. Tests and experiments use it to compare strategies on
// the same view; NewMaintainer picks automatically.
func NewMaintainerWithStrategy(v *View, kind StrategyKind) (*Maintainer, error) {
	var (
		m   algebra.Node
		err error
	)
	switch kind {
	case ChangeTable:
		m, err = buildChangeTable(v)
	case Recompute:
		m, err = buildRecompute(v)
	default:
		return nil, fmt.Errorf("view: %s: unknown strategy %d", v.Name(), kind)
	}
	if err != nil {
		return nil, fmt.Errorf("view: %s: %s strategy not applicable: %w", v.Name(), kind, err)
	}
	return newMaintainer(v, kind, m), nil
}

// Kind returns the chosen strategy.
func (m *Maintainer) Kind() StrategyKind { return m.kind }

// View returns the maintained view.
func (m *Maintainer) View() *View { return m.view }

// Expression returns the maintenance strategy M as a relational
// expression. It reads the stale view via Scan(StaleName(view)) and the
// staged deltas via Scan(db.InsOf/DelOf(table)); evaluating it against a
// context with those bindings yields the up-to-date view S′.
func (m *Maintainer) Expression() algebra.Node { return m.expr }

// MaintainStats reports the cost of one full maintenance run.
type MaintainStats struct {
	RowsTouched int64
	OutputRows  int
}

// Maintain evaluates M at full size and replaces the view's contents with
// the up-to-date result (incremental view maintenance). The staged deltas
// are left in place; the caller decides when to fold them into the base
// tables with db.ApplyDeltas.
func (m *Maintainer) Maintain(d *db.Database) (MaintainStats, error) {
	out, stats, err := m.MaintainAt(d.Pin(), m.view.Data())
	if err != nil {
		return MaintainStats{}, err
	}
	if err := m.view.Replace(out); err != nil {
		return MaintainStats{}, err
	}
	return stats, nil
}

// MaintainAt evaluates M against a pinned catalog version and an explicit
// stale-view relation, returning the up-to-date contents (coerced to the
// view schema) WITHOUT publishing them. This is the snapshot-serving form:
// the whole evaluation reads only immutable inputs, so it runs while
// queries are served and writers stage updates; the caller publishes the
// result (View.Replace, db.ApplyVersion) when ready.
//
// Evaluation consumes the batched pipeline directly: rows stream out of
// the maintenance expression and are coerced into the view's declared
// schema as they arrive, so no intermediate relation exists between the
// expression's operators and the maintained result.
func (m *Maintainer) MaintainAt(pin *db.Version, stale *relation.Relation) (*relation.Relation, MaintainStats, error) {
	return m.maintainExpr(pin.Context(), stale, m.evalExpr)
}

// maintainExpr is the shared evaluation core of MaintainAt and
// MaintainAtShared: drain the given maintenance expression against ctx
// (with the stale view bound) and coerce the stream into the view schema.
func (m *Maintainer) maintainExpr(ctx *algebra.Context, stale *relation.Relation, root algebra.Node) (*relation.Relation, MaintainStats, error) {
	ctx.Bind(StaleName(m.view.Name()), stale)
	fail := func(err error) (*relation.Relation, MaintainStats, error) {
		return nil, MaintainStats{}, fmt.Errorf("view: maintain %s: %w", m.view.Name(), err)
	}
	target := m.view.Schema()
	out := relation.NewSized(target, stale.Len())
	it := algebra.NewIterator(root)
	if err := it.Open(ctx); err != nil {
		return fail(err)
	}
	defer it.Close()
	width := target.NumCols()
	store := func(conv relation.Row) error {
		// Upsert, not Insert: the pre-pipeline evaluation deduplicated
		// by key at the expression root before coercing; streaming
		// keeps that semantics at the single materialization point.
		if target.HasKey() {
			_, err := out.Upsert(conv)
			return err
		}
		return out.Insert(conv)
	}
	for {
		b, err := it.Next()
		if err != nil {
			return fail(err)
		}
		if b == nil {
			break
		}
		ctx.RowsTouched += int64(b.Len())
		if b.Columnar() {
			// Columnar drain: coerce straight out of the column vectors
			// into the slab — no intermediate row view is built, and the
			// released batch returns its vectors to the pool for the next
			// cycle (no per-cycle vector reallocations).
			if b.Width() != width {
				return fail(fmt.Errorf("row arity %d != view arity %d", b.Width(), width))
			}
			n := b.Len()
			slab := make([]relation.Value, n*width)
			for k := 0; k < n; k++ {
				phys := b.PhysRow(k)
				conv := relation.Row(slab[k*width : (k+1)*width : (k+1)*width])
				for i := 0; i < width; i++ {
					conv[i] = coerceValue(target.Col(i).Type, b.ValueAt(phys, i))
				}
				if err := store(conv); err != nil {
					return fail(err)
				}
			}
			b.Release()
			continue
		}
		// One slab per batch: the coerced rows are retained by the output
		// relation, so slicing them out of a shared slab turns N row
		// allocations into one.
		slab := make([]relation.Value, len(b.Rows())*width)
		for r, row := range b.Rows() {
			if len(row) != width {
				return fail(fmt.Errorf("row arity %d != view arity %d", len(row), width))
			}
			conv := relation.Row(slab[r*width : (r+1)*width : (r+1)*width])
			for i, val := range row {
				conv[i] = coerceValue(target.Col(i).Type, val)
			}
			if err := store(conv); err != nil {
				return fail(err)
			}
		}
		b.Release()
	}
	return out, MaintainStats{RowsTouched: ctx.RowsTouched, OutputRows: out.Len()}, nil
}

// ---------------------------------------------------------------- recompute

// buildRecompute returns the view definition with every base scan replaced
// by (R − ∇R) ∪ ΔR.
func buildRecompute(v *View) (algebra.Node, error) {
	return substituteScans(v.def.Plan)
}

func substituteScans(n algebra.Node) (algebra.Node, error) {
	if s, ok := n.(*algebra.ScanNode); ok {
		base := algebra.Scan(s.Name(), s.Schema())
		del := algebra.Scan(db.DelOf(s.Name()), s.Schema())
		ins := algebra.Scan(db.InsOf(s.Name()), s.Schema())
		minus, err := algebra.Difference(base, del)
		if err != nil {
			return nil, err
		}
		return algebra.Union(minus, ins)
	}
	children := n.Children()
	if len(children) == 0 {
		return n, nil
	}
	newCh := make([]algebra.Node, len(children))
	for i, c := range children {
		nc, err := substituteScans(c)
		if err != nil {
			return nil, err
		}
		newCh[i] = nc
	}
	return n.WithChildren(newCh), nil
}

// ---------------------------------------------------------------- change table

// buildChangeTable builds the change-table maintenance expression for SPJ
// and single-level count/sum aggregate views.
func buildChangeTable(v *View) (algebra.Node, error) {
	plan := v.def.Plan
	if agg, ok := plan.(*algebra.AggregateNode); ok {
		return buildAggChangeTable(v, agg)
	}
	return buildSPJChangeTable(v, plan)
}

// buildSPJChangeTable maintains a select-project-join view:
// S′ = (S − δ⁻) ∪ δ⁺.
//
// The raw delta stream can carry several ±1 contributions for the same
// view row (e.g. a dimension update surfaces through the δL⋈R, L⋈δR and
// δL⋈δR pieces), so the stream is first netted per distinct full row; rows
// netting negative are removals, positive are additions, zero cancels.
func buildSPJChangeTable(v *View, plan algebra.Node) (algebra.Node, error) {
	delta, err := DeltaPlan(plan)
	if err != nil {
		return nil, err
	}
	key := v.KeyNames()
	if len(key) == 0 {
		return nil, fmt.Errorf("view %s has no key", v.Name())
	}
	const netCol = "__net"
	net, err := algebra.GroupBy(delta, v.Schema().Names(),
		algebra.SumAs(expr.Col(MultCol), netCol))
	if err != nil {
		return nil, err
	}
	viewCols := algebra.OutCols(v.Schema().Names()...)
	part := func(sign expr.Expr) (algebra.Node, error) {
		sel, err := algebra.Select(net, sign)
		if err != nil {
			return nil, err
		}
		return algebra.ProjectKeyed(sel, viewCols, key...)
	}
	dDel, err := part(expr.Lt(expr.Col(netCol), expr.IntLit(0)))
	if err != nil {
		return nil, err
	}
	dIns, err := part(expr.Gt(expr.Col(netCol), expr.IntLit(0)))
	if err != nil {
		return nil, err
	}
	stale := algebra.Scan(StaleName(v.Name()), v.Schema())
	minus, err := algebra.Difference(stale, dDel)
	if err != nil {
		return nil, err
	}
	return algebra.Union(minus, dIns)
}

// buildAggChangeTable maintains γ_{A,aggs}(SPJ): compute the change table
// CT = γ_A over the delta stream (count deltas as Σmult, sum deltas as
// Σ mult·e), full-outer-merge it with the stale view on A, add the
// coalesced deltas, and drop groups whose count reaches zero.
func buildAggChangeTable(v *View, agg *algebra.AggregateNode) (algebra.Node, error) {
	groupBy := agg.GroupKeys()
	if len(groupBy) == 0 {
		return nil, fmt.Errorf("view %s: grand aggregates have no key", v.Name())
	}
	specs := agg.Aggs()
	countCol := ""
	for _, s := range specs {
		switch s.Func {
		case algebra.Count:
			if countCol == "" {
				countCol = s.As
			}
		case algebra.Sum:
			// fine
		default:
			return nil, fmt.Errorf("view %s: %s aggregate is not incrementally maintainable here", v.Name(), s.Func)
		}
	}
	if countCol == "" {
		return nil, fmt.Errorf("view %s: change-table maintenance needs a count column to garbage-collect empty groups", v.Name())
	}

	delta, err := DeltaPlan(agg.Children()[0])
	if err != nil {
		return nil, err
	}

	// Change table: per group, the signed delta of each aggregate.
	deltaName := func(col string) string { return "δ" + col }
	var ctAggs []algebra.AggSpec
	for _, s := range specs {
		switch s.Func {
		case algebra.Count:
			ctAggs = append(ctAggs, algebra.SumAs(expr.Col(MultCol), deltaName(s.As)))
		case algebra.Sum:
			ctAggs = append(ctAggs, algebra.SumAs(expr.Mul(expr.Col(MultCol), s.Input), deltaName(s.As)))
		}
	}
	ct, err := algebra.GroupBy(delta, groupBy, ctAggs...)
	if err != nil {
		return nil, err
	}
	// Rename CT group columns so the merge join can equate them.
	ctName := func(col string) string { return "ct·" + col }
	var ctOuts []algebra.Output
	var on []algebra.EqPair
	for _, g := range groupBy {
		ctOuts = append(ctOuts, algebra.Out(ctName(g), expr.Col(g)))
		on = append(on, algebra.EqPair{Left: g, Right: ctName(g)})
	}
	for _, s := range specs {
		ctOuts = append(ctOuts, algebra.OutCol(deltaName(s.As)))
	}
	ctRenamed, err := algebra.Project(ct, ctOuts)
	if err != nil {
		return nil, err
	}

	stale := algebra.Scan(StaleName(v.Name()), v.Schema())
	merged, err := algebra.Join(stale, ctRenamed, algebra.JoinSpec{
		Type: algebra.FullOuter, On: on, Merge: true,
	})
	if err != nil {
		return nil, err
	}

	// Merge projection: group columns pass through (coalesced by the
	// merged join); aggregate columns add the coalesced delta. Counts
	// stay integers.
	var outs []algebra.Output
	for _, g := range groupBy {
		outs = append(outs, algebra.OutCol(g))
	}
	for _, s := range specs {
		sum := expr.Add(
			expr.Coalesce(expr.Col(s.As), expr.IntLit(0)),
			expr.Coalesce(expr.Col(deltaName(s.As)), expr.IntLit(0)),
		)
		if s.Func == algebra.Count {
			outs = append(outs, algebra.Out(s.As, expr.Func("toint", sum)))
		} else {
			outs = append(outs, algebra.Out(s.As, expr.Func("tofloat", sum)))
		}
	}
	proj, err := algebra.ProjectKeyed(merged, outs, groupBy...)
	if err != nil {
		return nil, err
	}
	// Superfluous rows: groups whose contributions all vanished.
	return algebra.Select(proj, expr.Gt(expr.Col(countCol), expr.IntLit(0)))
}
