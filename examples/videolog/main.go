// Videolog: the Section 2.1 log-analysis scenario — a video streaming
// company tracking user engagement with per-owner dashboards.
//
// Demonstrates group-by estimation (average visits per video, total visits
// per owner) and the Appendix 12.1.2 cleaned SELECT: "which videos
// currently have more than 100 views?" answered from a stale view plus a
// cleaned sample, with estimates of how many rows changed.
//
// Run with: go run ./examples/videolog
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	svc "github.com/sampleclean/svc"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	d := svc.NewDatabase()

	video := d.MustCreate("Video", svc.NewSchema([]svc.Column{
		svc.Col("videoId", svc.KindInt),
		svc.Col("ownerId", svc.KindInt),
		svc.Col("duration", svc.KindFloat),
	}, "videoId"))
	const videos, owners = 800, 12
	for i := 0; i < videos; i++ {
		video.MustInsert(svc.Row{
			svc.Int(int64(i)), svc.Int(rng.Int63n(owners)), svc.Float(0.2 + rng.Float64()*2.5),
		})
	}
	logT := d.MustCreate("Log", svc.NewSchema([]svc.Column{
		svc.Col("sessionId", svc.KindInt),
		svc.Col("videoId", svc.KindInt),
	}, "sessionId"))
	nextSession := int64(0)
	addVisits := func(n int, stage bool) {
		for i := 0; i < n; i++ {
			// Popular videos get most of the traffic.
			vid := int64(rng.NormFloat64()*float64(videos)/6) % int64(videos)
			if vid < 0 {
				vid = -vid
			}
			row := svc.Row{svc.Int(nextSession), svc.Int(vid)}
			nextSession++
			if stage {
				if err := logT.StageInsert(row); err != nil {
					log.Fatal(err)
				}
			} else {
				logT.MustInsert(row)
			}
		}
	}
	addVisits(60000, false)

	plan := svc.GroupByAgg(
		svc.Join(
			svc.Scan("Log", logT.Schema()),
			svc.Scan("Video", video.Schema()),
			svc.JoinSpec{Type: svc.Inner, On: svc.On("videoId", "videoId"), Merge: true},
		),
		[]string{"videoId", "ownerId"},
		svc.CountAs("visitCount"),
	)
	sv, err := svc.New(d, svc.ViewDefinition{Name: "visitView", Plan: plan},
		svc.WithSamplingRatio(0.08))
	if err != nil {
		log.Fatal(err)
	}

	// A burst of new sessions arrives before the nightly maintenance.
	addVisits(9000, true)

	// Dashboard 1: total visits per owner (top 5), estimated.
	groups, err := sv.QueryGroups(svc.Sum("visitCount", nil), "ownerId")
	if err != nil {
		log.Fatal(err)
	}
	type ownerRow struct {
		label string
		est   float64
	}
	var rows []ownerRow
	for k, est := range groups.Groups {
		rows = append(rows, ownerRow{groups.Labels[k], est.Value})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].est > rows[j].est })
	fmt.Println("top owners by estimated up-to-date visits:")
	for i, r := range rows {
		if i == 5 {
			break
		}
		fmt.Printf("  owner %-3s ≈ %8.0f visits\n", r.label, r.est)
	}

	// Dashboard 2: average visits per video, stale vs estimated.
	avg, err := sv.Query(svc.Avg("visitCount", nil))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\navg visits per video: stale %.2f, SVC estimate %.2f (CI [%.2f, %.2f])\n",
		avg.StaleValue, avg.Value, avg.Lo, avg.Hi)

	// Dashboard 3: the cleaned SELECT — current hot videos.
	res, err := sv.CleanSelect(svc.Gt(svc.ColRef("visitCount"), svc.IntLit(300)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvideos with >300 views (cleaned selection): %d rows\n", res.Rows.Len())
	fmt.Printf("  est. rows updated: %.0f, newly qualifying: %.0f, dropped out: %.0f\n",
		res.Updated.Value, res.Added.Value, res.Removed.Value)

	// Nightly maintenance closes the period.
	if err := sv.MaintainNow(); err != nil {
		log.Fatal(err)
	}
	exact, _ := sv.ExactQuery(svc.Avg("visitCount", nil))
	fmt.Printf("\nafter nightly maintenance, exact avg visits per video: %.2f\n", exact)
}
