// Package svc is a Go implementation of Stale View Cleaning (Krishnan,
// Wang, Franklin, Goldberg, Kraska — "Stale View Cleaning: Getting Fresh
// Answers from Stale Materialized Views", PVLDB 8(12), 2015).
//
// Materialized views go stale between maintenance periods. SVC cleans a
// deterministic hash sample of the stale view by pushing the sampling
// operator through the view's maintenance strategy, then answers aggregate
// queries from the pair of corresponding samples: either directly
// (SVC+AQP) or as a correction to the stale answer (SVC+CORR), with
// confidence intervals. An optional outlier index keeps heavy-tail records
// exact.
//
// The package is a facade over the engine packages in internal/: an
// in-memory relational algebra with Definition 2 key derivation, hash
// push-down (Definition 3 / Theorem 1), change-table and recompute
// maintenance strategies, the estimators of Section 5, and the outlier
// machinery of Section 6.
//
// Beyond per-view serving, the package plans maintenance across the whole
// catalog: MaintainViews runs one group cycle over several views — one
// pinned version, one subplan cache so shared delta scans evaluate once,
// one partial fold covering exactly the group's base tables — and
// Scheduler (NewScheduler, WithScheduler) decides each tick which views
// that cycle should cover, ranking them by expected error reduction per
// unit maintenance cost under the observed query mix, with a starvation
// bound. See DESIGN.md "Multi-view maintenance optimizer".
//
// Quickstart:
//
//	d := svc.NewDatabase()
//	// ... create tables, load data (svc.Col, svc.NewSchema, Table.Insert)
//	sv, _ := svc.New(d, svc.ViewDefinition{Name: "visits", Plan: plan},
//		svc.WithSamplingRatio(0.1))
//	// ... stage updates (Table.StageInsert / StageUpdate / StageDelete)
//	est, _ := sv.Query(svc.Sum("visitCount", nil))
//	fmt.Println(est.Value, est.Lo, est.Hi)
package svc

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sampleclean/svc/internal/clean"
	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/estimator"
	"github.com/sampleclean/svc/internal/hashing"
	"github.com/sampleclean/svc/internal/outlier"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/svcql"
	"github.com/sampleclean/svc/internal/view"
)

// Mode selects the estimator a StaleView uses for Query.
type Mode uint8

// Estimation modes.
const (
	// Auto applies the Section 5.2.2 break-even analysis per query:
	// SVC+CORR while the staleness is low, SVC+AQP beyond it.
	Auto Mode = iota
	// Corr always corrects the stale answer (SVC+CORR).
	Corr
	// AQP always estimates directly from the clean sample (SVC+AQP).
	AQP
)

// Option configures New.
type Option func(*config)

type config struct {
	ratio      float64
	confidence float64
	hasher     hashing.Hasher
	mode       Mode
	outliers   *outlierSpec
	parallel   int
	columnar   *bool
	refresh    time.Duration
	durableDir string
	sched      *Scheduler
}

type outlierSpec struct {
	table, attr string
	limit       int
	sigma       float64 // threshold = mean + sigma·stdev; 0 means top-limit
}

// WithSamplingRatio sets the sample ratio m (default 0.10).
func WithSamplingRatio(m float64) Option { return func(c *config) { c.ratio = m } }

// WithConfidence sets the confidence level for intervals (default 0.95).
func WithConfidence(level float64) Option { return func(c *config) { c.confidence = level } }

// WithHasher overrides the deterministic hash function (default finalized
// FNV-64; SHA1 available for maximal uniformity).
func WithHasher(h Hasher) Option { return func(c *config) { c.hasher = h } }

// WithMode fixes the estimator choice (default Auto).
func WithMode(m Mode) Option { return func(c *config) { c.mode = m } }

// WithParallelism sets the intra-operator worker count for every
// evaluation this view triggers — materialization, maintenance, and
// sampled cleaning all inherit it. The setting is stored on the shared
// database engine (equivalent to calling Database.SetParallelism), so it
// applies to other views over the same database too. Parallel evaluation
// partitions hash-join build/probe and aggregation by key hash and
// produces results identical to serial evaluation; 0 and 1 mean serial.
func WithParallelism(n int) Option { return func(c *config) { c.parallel = n } }

// WithColumnar enables or disables the columnar batch path for every
// evaluation this view triggers (materialization, maintenance, sampled
// cleaning, svcql execution). Like WithParallelism, the setting lives on
// the shared database engine (Database.SetColumnar). Columnar execution
// is the default and produces results identical to the row-at-a-time
// pipeline; turning it off exists for A/B benchmarking (svcbench
// -columnar=off) and debugging.
func WithColumnar(on bool) Option { return func(c *config) { c.columnar = &on } }

// WithOutlierIndex attaches a Section 6 outlier index on table.attr,
// keeping the top `limit` records above an adaptive top-k threshold.
func WithOutlierIndex(table, attr string, limit int) Option {
	return func(c *config) { c.outliers = &outlierSpec{table: table, attr: attr, limit: limit} }
}

// WithBackgroundRefresh starts a background Refresher at construction:
// every interval, if any base table has staged deltas, a full
// maintenance+cleaning cycle runs on a pinned snapshot and publishes its
// results atomically, while Query keeps serving from the previous
// publication. Stop it with StaleView.Close (or Refresher.Stop).
func WithBackgroundRefresh(interval time.Duration) Option {
	return func(c *config) { c.refresh = interval }
}

// WithScheduler registers the view with an error-budget refresh scheduler
// (see Scheduler) instead of a fixed-interval refresher: the scheduler
// decides each tick whether this view's expected query error justifies a
// maintenance cycle, and batches it with other views sharing delta
// subplans. Combine with WithBackgroundRefresh only if you want the
// refresher as a fallback — it defers to the scheduler while registered
// (Refresher.SkipsDeferred counts those ticks).
func WithScheduler(s *Scheduler) Option { return func(c *config) { c.sched = s } }

// WithOutlierSigmaThreshold switches the outlier threshold policy to
// mean + sigma·stdev (Section 6.1's alternative policy).
func WithOutlierSigmaThreshold(table, attr string, limit int, sigma float64) Option {
	return func(c *config) {
		c.outliers = &outlierSpec{table: table, attr: attr, limit: limit, sigma: sigma}
	}
}

// StaleView is the top-level handle: a materialized view, its maintenance
// strategy, the persistent sample view, and the estimators.
//
// Query, QueryGroups, CleanSelect, and Clean are safe for concurrent use
// with each other, with staged updates (Table.StageInsert/Update/Delete),
// and with maintenance (MaintainNow or a background Refresher): every
// query evaluates against one pinned catalog version and the view/sample
// pair published with it, so its answer is internally consistent and
// stamped with the version's epoch (Estimate.AsOfEpoch). MaintainNow
// serializes with itself; staging serializes on the database writer lock.
type StaleView struct {
	db      *db.Database
	view    *view.View
	maint   *view.Maintainer
	cleaner *clean.Cleaner
	conf    float64
	mode    Mode
	outSpec *outlierSpec
	outMz   *outlier.Materializer
	outIx   *outlier.Index

	key     string     // serving-attachment key in db versions
	maintMu sync.Mutex // one maintenance cycle at a time

	// Per-epoch caches: the cleaned sample pair and the outlier partition
	// are pure functions of the pinned version and are treated as
	// read-only by the estimators, so concurrent readers at the same
	// epoch share one evaluation of each.
	sampleCache  epochCache[*Samples]
	outlierCache epochCache[*estimator.OutlierSet]

	refresher atomic.Pointer[Refresher]

	// queries counts answered queries (Query/QueryGroups/CleanSelect);
	// sched points at the Scheduler managing this view, when one does.
	// Together they feed the error-budget refresh scheduler's query-mix
	// model (scheduler.go).
	queries atomic.Uint64
	sched   atomic.Pointer[Scheduler]

	// appliedSeq records the catalog's maintenance-boundary counter as of
	// this view's last publication — how far maintenance has actually
	// carried this view, as opposed to the catalog-wide epoch which also
	// advances on staging. Stats readers pair it with the epoch to compute
	// per-view lag.
	appliedSeq atomic.Uint64
}

// AppliedSeq reports the catalog's maintenance-boundary counter as of
// this view's last maintenance publication (0 before the first cycle).
func (sv *StaleView) AppliedSeq() uint64 { return sv.appliedSeq.Load() }

// noteQuery feeds one answered query into the scheduling model.
func (sv *StaleView) noteQuery() {
	sv.queries.Add(1)
	if s := sv.sched.Load(); s != nil {
		s.noteQuery(sv.view.Name())
	}
}

// Queries reports how many queries this view has answered.
func (sv *StaleView) Queries() uint64 { return sv.queries.Load() }

// Scheduled reports whether an error-budget Scheduler manages this view's
// maintenance. Background Refreshers defer their cycles while it does.
func (sv *StaleView) Scheduled() bool { return sv.sched.Load() != nil }

// Scheduler returns the Scheduler managing this view, or nil.
func (sv *StaleView) Scheduler() *Scheduler { return sv.sched.Load() }

// epochCache shares one computed value per publication epoch among
// concurrent readers. The cache check is a short lock; the computation
// runs unlocked, so a fresh epoch never serializes readers — concurrent
// misses duplicate the work once and the newest-epoch result wins.
type epochCache[T any] struct {
	mu    sync.Mutex
	epoch uint64
	val   T
	valid bool
}

func (c *epochCache[T]) get(epoch uint64, compute func() (T, error)) (T, error) {
	c.mu.Lock()
	if c.valid && c.epoch == epoch {
		v := c.val
		c.mu.Unlock()
		return v, nil
	}
	c.mu.Unlock()
	v, err := compute()
	if err != nil {
		var zero T
		return zero, err
	}
	c.mu.Lock()
	if !c.valid || epoch >= c.epoch {
		c.val, c.epoch, c.valid = v, epoch, true
	}
	c.mu.Unlock()
	return v, nil
}

// servingState is the (S, Ŝ) pair published with each maintenance cycle.
// It rides along inside db versions so a reader pinning any version gets
// base tables, pending deltas, view, and sample from one consistent cut.
type servingState struct {
	view   *relation.Relation // S as of the last maintenance boundary
	sample *relation.Relation // Ŝ corresponding to it
}

// servingKey names a view's serving attachment inside database versions.
func servingKey(viewName string) string { return "svc·" + viewName }

// pinServing pins the current catalog version together with the serving
// state published for this view — the consistent read set of one query.
//
// The fast path checks that the published attachment still matches the
// live view/sample pointers. A mismatch means someone drove maintenance
// through the lower-level handles (Maintainer().Maintain + ApplyDeltas +
// Cleaner().Adopt — the pre-serving workflow) without republishing; the
// slow path serializes with MaintainNow and republishes the live
// pointers, so those flows keep answering correctly. While MaintainNow
// itself is mid-publication the mismatch window is the instant between
// its catalog publish and its pointer swaps; a reader landing there just
// waits out the tail of the cycle on maintMu.
func (sv *StaleView) pinServing() (*db.Version, *servingState) {
	pin := sv.db.Pin()
	if st, ok := pin.Attachment(sv.key).(*servingState); ok &&
		st.view == sv.view.Data() && st.sample == sv.cleaner.StaleSample() {
		return pin, st
	}
	sv.maintMu.Lock()
	defer sv.maintMu.Unlock()
	return sv.pinServingLocked()
}

// pinServingLocked is pinServing's core; the caller holds maintMu, so
// live pointers cannot move concurrently and republishing them is safe.
func (sv *StaleView) pinServingLocked() (*db.Version, *servingState) {
	pin := sv.db.Pin()
	if st, ok := pin.Attachment(sv.key).(*servingState); ok &&
		st.view == sv.view.Data() && st.sample == sv.cleaner.StaleSample() {
		return pin, st
	}
	st := &servingState{view: sv.view.Data(), sample: sv.cleaner.StaleSample()}
	sv.db.SetAttachment(sv.key, st)
	return sv.db.Pin(), st
}

// cleanPinned returns the corresponding sample pair for the pinned
// version, sharing one evaluation among all readers at the same epoch.
func (sv *StaleView) cleanPinned(pin *db.Version, st *servingState) (*Samples, error) {
	return sv.sampleCache.get(pin.Epoch(), func() (*Samples, error) {
		return sv.cleaner.CleanAt(pin, st.view, st.sample)
	})
}

// New materializes the view over the database's current contents, chooses
// a maintenance strategy (change-table IVM when the definition's shape
// allows, recompute otherwise), derives the sampled cleaning expression by
// hash push-down, and materializes the initial sample view.
func New(d *Database, def ViewDefinition, opts ...Option) (*StaleView, error) {
	cfg := config{ratio: 0.10, confidence: 0.95, mode: Auto}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.parallel > 0 {
		d.SetParallelism(cfg.parallel)
	}
	if cfg.columnar != nil {
		d.SetColumnar(*cfg.columnar)
	}
	if cfg.durableDir != "" && DurableLogOf(d) == nil {
		// Attach (and recover) before materializing, so the view's initial
		// contents already include any deltas a previous run staged durably.
		if _, _, err := AttachDurableLog(d, cfg.durableDir, DurableLogOptions{}); err != nil {
			return nil, err
		}
	}
	v, err := view.Materialize(d, def)
	if err != nil {
		return nil, err
	}
	m, err := view.NewMaintainer(v)
	if err != nil {
		return nil, err
	}
	c, err := clean.New(m, cfg.ratio, cfg.hasher)
	if err != nil {
		return nil, err
	}
	if cfg.parallel > 0 {
		// An explicit SetParallelism pins the cleaner in both directions
		// (serial stays serial under a parallel pin), so only forward a
		// worker count the caller actually chose; otherwise the cleaner
		// inherits each pinned version's parallelism.
		c.SetParallelism(cfg.parallel)
	}
	sv := &StaleView{db: d, view: v, maint: m, cleaner: c, conf: cfg.confidence, mode: cfg.mode,
		outSpec: cfg.outliers, key: servingKey(def.Name)}
	if cfg.outliers != nil {
		if err := sv.buildOutlierIndex(); err != nil {
			return nil, err
		}
	}
	// Publish the initial serving state so concurrent queries pin a
	// consistent (version, view, sample) triple from the first call, and
	// route the cleaner's own Clean through the same consistent lookup.
	d.SetAttachment(sv.key, &servingState{view: v.Data(), sample: c.StaleSample()})
	c.SetServingSource(d, func() (*db.Version, *relation.Relation, *relation.Relation) {
		pin, st := sv.pinServing()
		return pin, st.view, st.sample
	})
	if cfg.sched != nil {
		if err := cfg.sched.Register(sv); err != nil {
			return nil, err
		}
	}
	if cfg.refresh > 0 {
		sv.StartBackgroundRefresh(cfg.refresh)
	}
	return sv, nil
}

func (sv *StaleView) buildOutlierIndex() error {
	spec := sv.outSpec
	t := sv.db.Table(spec.table)
	if t == nil {
		return fmt.Errorf("svc: outlier index on unknown table %q", spec.table)
	}
	var thr float64
	var err error
	if spec.sigma > 0 {
		thr, err = outlier.SigmaThreshold(t, spec.attr, spec.sigma)
	} else {
		thr, err = outlier.TopKThreshold(t, spec.attr, spec.limit)
	}
	if err != nil {
		return err
	}
	ix, err := outlier.NewIndex(spec.table, spec.attr, t.Schema(), thr, spec.limit)
	if err != nil {
		return err
	}
	if !outlier.Eligible(sv.cleaner, ix) {
		return fmt.Errorf("svc: outlier index on %s is not eligible: the cleaner does not sample that relation (Definition 5)", spec.table)
	}
	mz, err := outlier.NewMaterializer(sv.view, ix)
	if err != nil {
		return err
	}
	sv.outIx, sv.outMz = ix, mz
	return nil
}

// View returns the (possibly stale) materialized view.
func (sv *StaleView) View() *View { return sv.view }

// Maintainer returns the maintenance strategy owner.
func (sv *StaleView) Maintainer() *ViewMaintainer { return sv.maint }

// Cleaner returns the sampled cleaner (exposes the optimized cleaning
// expression and the persistent sample).
func (sv *StaleView) Cleaner() *ViewCleaner { return sv.cleaner }

// Stale reports whether any base table has staged deltas.
func (sv *StaleView) Stale() bool { return sv.db.HasPending() }

// Clean materializes the corresponding samples (Ŝ, Ŝ′) against the
// currently staged deltas. Most callers use Query instead; Clean is the
// low-level hook for custom estimation.
func (sv *StaleView) Clean() (*Samples, error) {
	pin, st := sv.pinServing()
	return sv.cleaner.CleanAt(pin, st.view, st.sample)
}

// Answer is a query result: the estimate plus the stale baseline for
// comparison.
type Answer struct {
	Estimate
	// StaleValue is the uncorrected answer from the stale view.
	StaleValue float64
}

// Query estimates an aggregate query's up-to-date answer from a freshly
// cleaned sample pair. The estimator follows the configured Mode; outlier
// partitions are merged automatically when an index is attached.
//
// Query is safe for concurrent use: it pins one published catalog version
// and evaluates everything — cleaning, the stale baseline, the outlier
// partition, the estimate — against that version's immutable relations.
// The answer's AsOfEpoch records which version it was.
func (sv *StaleView) Query(q Query) (Answer, error) {
	sv.noteQuery()
	pin, st := sv.pinServing()
	samples, err := sv.cleanPinned(pin, st)
	if err != nil {
		return Answer{}, err
	}
	staleVal, err := estimator.RunExact(st.view, q)
	if err != nil {
		return Answer{}, err
	}
	var o *estimator.OutlierSet
	if sv.outMz != nil {
		o, err = sv.outlierSet(pin, st)
		if err != nil {
			return Answer{}, err
		}
	}
	mode := sv.mode
	if mode == Auto {
		advised, err := estimator.Advise(samples, q)
		if err != nil {
			return Answer{}, err
		}
		if advised == "svc+corr" {
			mode = Corr
		} else {
			mode = AQP
		}
	}
	var est Estimate
	switch mode {
	case Corr:
		if o != nil {
			est, err = estimator.CorrWithOutliers(st.view, samples, o, q, sv.conf)
		} else {
			est, err = estimator.Corr(st.view, samples, q, sv.conf)
		}
	default:
		if o != nil {
			est, err = estimator.AQPWithOutliers(samples, o, q, sv.conf)
		} else {
			est, err = estimator.AQP(samples, q, sv.conf)
		}
	}
	if err != nil {
		return Answer{}, err
	}
	est.AsOfEpoch = pin.Epoch()
	return Answer{Estimate: est, StaleValue: staleVal}, nil
}

// outlierSet returns the outlier partition for the pinned version,
// sharing one evaluation among all readers at the same epoch. A cache
// miss builds a fresh index off to the side with no lock held, so
// readers never serialize on the O(|table|) rebuild.
func (sv *StaleView) outlierSet(pin *db.Version, st *servingState) (*estimator.OutlierSet, error) {
	return sv.outlierCache.get(pin.Epoch(), func() (*estimator.OutlierSet, error) {
		base := pin.Base(sv.outSpec.table)
		if base == nil {
			return nil, fmt.Errorf("svc: outlier table %q missing from pinned version", sv.outSpec.table)
		}
		// sv.outIx is immutable after construction; it contributes only
		// the threshold configuration here.
		ix, err := outlier.NewIndex(sv.outSpec.table, sv.outSpec.attr, base.Schema(), sv.outIx.Threshold(), sv.outSpec.limit)
		if err != nil {
			return nil, err
		}
		if err := ix.BuildFromVersion(pin); err != nil {
			return nil, err
		}
		return sv.outMz.MaterializeRecords(pin, st.view, ix.Records())
	})
}

// QueryGroups estimates a group-by aggregate per group. Like Query, it is
// safe for concurrent use and evaluates against one pinned version.
func (sv *StaleView) QueryGroups(q Query, groupBy ...string) (GroupResult, error) {
	sv.noteQuery()
	pin, st := sv.pinServing()
	samples, err := sv.cleanPinned(pin, st)
	if err != nil {
		return GroupResult{}, err
	}
	mode := sv.mode
	if mode == Auto {
		advised, err := estimator.Advise(samples, q)
		if err != nil {
			return GroupResult{}, err
		}
		if advised == "svc+corr" {
			mode = Corr
		} else {
			mode = AQP
		}
	}
	var res GroupResult
	if mode == Corr {
		res, err = estimator.GroupCorr(st.view, samples, q, groupBy, sv.conf)
	} else {
		res, err = estimator.GroupAQP(samples, q, groupBy, sv.conf)
	}
	if err != nil {
		return GroupResult{}, err
	}
	for k, est := range res.Groups {
		est.AsOfEpoch = pin.Epoch()
		res.Groups[k] = est
	}
	return res, nil
}

// CleanSelect answers SELECT * WHERE pred with sampled corrections applied
// (Appendix 12.1.2): updated rows overwritten, sampled missing rows added,
// sampled superfluous rows removed, plus count estimates of each error
// class.
func (sv *StaleView) CleanSelect(pred Expr) (*SelectResult, error) {
	sv.noteQuery()
	pin, st := sv.pinServing()
	samples, err := sv.cleanPinned(pin, st)
	if err != nil {
		return nil, err
	}
	res, err := estimator.CleanSelect(st.view, samples, pred, sv.conf)
	if err != nil {
		return nil, err
	}
	res.Updated.AsOfEpoch = pin.Epoch()
	res.Added.AsOfEpoch = pin.Epoch()
	res.Removed.AsOfEpoch = pin.Epoch()
	return res, nil
}

// MaintainNow runs full incremental maintenance (the deferred-maintenance
// boundary): the view is brought up to date, the staged deltas are folded
// into the base tables, and the sample view rolls forward with them.
//
// The whole cycle evaluates against one pinned catalog version while
// queries keep being served from the previous publication, then publishes
// the maintained view, the rolled-forward sample, and the delta fold in a
// single version swap. Updates staged while the cycle ran stay pending
// (db.ApplyVersion re-bases them) and are picked up by the next cycle.
func (sv *StaleView) MaintainNow() error {
	sv.maintMu.Lock()
	defer sv.maintMu.Unlock()
	pin, st := sv.pinServingLocked()
	samples, err := sv.cleanPinned(pin, st)
	if err != nil {
		return err
	}
	// By Theorem 1 the cleaned sample equals η(S′), so adopting it keeps
	// the sample corresponding to the maintained view without rescanning.
	newSample, err := sv.cleaner.CoerceSample(samples)
	if err != nil {
		return err
	}
	maintained, _, err := sv.maint.MaintainAt(pin, st.view)
	if err != nil {
		return err
	}
	if err := sv.db.ApplyVersion(pin, map[string]any{
		sv.key: &servingState{view: maintained, sample: newSample},
	}); err != nil {
		return err
	}
	// Keep the live accessors (View().Data(), Cleaner().StaleSample()) in
	// step with the publication.
	if err := sv.view.Replace(maintained); err != nil {
		return err
	}
	sv.cleaner.AdoptRelation(newSample)
	sv.appliedSeq.Store(sv.db.Pin().AppliedSeq())
	return nil
}

// ExactQuery evaluates q exactly on the current (possibly stale) view —
// the "no maintenance" baseline.
func (sv *StaleView) ExactQuery(q Query) (float64, error) {
	return estimator.RunExact(sv.view.Data(), q)
}

// ViewFromSQL compiles a CREATE VIEW statement in the paper's SQL dialect
// into a view definition over the database's base tables:
//
//	def, err := svc.ViewFromSQL(d, `
//	    CREATE VIEW visitView AS
//	    SELECT videoId, ownerId, COUNT(1) AS visitCount
//	    FROM Log JOIN Video ON Log.videoId = Video.videoId
//	    GROUP BY videoId, ownerId`)
//
// See package internal/svcql for the grammar.
func ViewFromSQL(d *Database, sql string) (ViewDefinition, error) {
	return svcql.PlanView(d, sql)
}

// QuerySQL parses and answers an aggregate query in the paper's SQL
// dialect against this view:
//
//	ans, err := sv.QuerySQL(`SELECT COUNT(1) FROM visitView WHERE visitCount > 100`)
//
// Group-by queries go through QueryGroupsSQL.
func (sv *StaleView) QuerySQL(sql string) (Answer, error) {
	aq, err := svcql.PlanQuery(sv.view, sql)
	if err != nil {
		return Answer{}, err
	}
	if len(aq.GroupBy) > 0 {
		return Answer{}, fmt.Errorf("svc: query has GROUP BY; use QueryGroupsSQL")
	}
	return sv.Query(aq.Query)
}

// QueryGroupsSQL parses and answers a group-by aggregate in SQL.
func (sv *StaleView) QueryGroupsSQL(sql string) (GroupResult, error) {
	aq, err := svcql.PlanQuery(sv.view, sql)
	if err != nil {
		return GroupResult{}, err
	}
	return sv.QueryGroups(aq.Query, aq.GroupBy...)
}
