package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/relation"
)

// Checkpoint file layout: 8-byte magic, a body (applied counter, sequence
// cut, and every base table of the boundary's published version), and a
// trailing CRC-32C of the body. A checkpoint at cut C makes every segment
// whose records are all ≤ C droppable: recovery restores the images and
// replays only records with seq > C.
//
// Checkpoints serialize an immutable db.Version, so the syncer writes
// them off every lock while staging and maintenance continue.
const ckptMagic = "SVCCKPT1"

// kindToWire maps a declared column kind onto the stable wire enum
// (record.go); wireToKind inverts it.
func kindToWire(k relation.Kind) uint8 {
	switch k {
	case relation.KindInt:
		return wireInt
	case relation.KindFloat:
		return wireFloat
	case relation.KindString:
		return wireString
	case relation.KindBool:
		return wireBool
	default:
		return wireNull
	}
}

func wireToKind(w uint8) (relation.Kind, error) {
	switch w {
	case wireInt:
		return relation.KindInt, nil
	case wireFloat:
		return relation.KindFloat, nil
	case wireString:
		return relation.KindString, nil
	case wireBool:
		return relation.KindBool, nil
	case wireNull:
		return relation.KindNull, nil
	default:
		return relation.KindNull, fmt.Errorf("wal: unknown column kind %d", w)
	}
}

// encodeCheckpoint serializes the base tables of v.
func encodeCheckpoint(v *db.Version, applied, cut uint64) []byte {
	buf := make([]byte, 0, 1<<16)
	buf = append(buf, ckptMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, applied)
	buf = binary.LittleEndian.AppendUint64(buf, cut)
	tables := v.Tables()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tables)))
	for _, name := range tables {
		base := v.Base(name)
		sch := base.Schema()
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
		buf = append(buf, name...)
		cols := sch.Cols()
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(cols)))
		for _, c := range cols {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(c.Name)))
			buf = append(buf, c.Name...)
			buf = append(buf, kindToWire(c.Type))
		}
		key := sch.Key()
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(key)))
		for _, k := range key {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(k))
		}
		rows := base.Rows()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rows)))
		for _, row := range rows {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(row)))
			for _, val := range row {
				buf = appendValue(buf, val)
			}
		}
	}
	body := buf[len(ckptMagic):]
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(body, crcTable))
}

// ckptMeta is the header of a validated checkpoint file.
type ckptMeta struct {
	applied, cut uint64
	bytes        int
}

// ckptTable is one restored base-table image.
type ckptTable struct {
	name string
	rows *relation.Relation
}

// ckptCursor walks a checkpoint body with torn-safe bounds checks.
type ckptCursor struct{ b []byte }

func (c *ckptCursor) take(n int) ([]byte, error) {
	if len(c.b) < n {
		return nil, fmt.Errorf("wal: checkpoint truncated")
	}
	out := c.b[:n]
	c.b = c.b[n:]
	return out, nil
}

func (c *ckptCursor) u16() (int, error) {
	b, err := c.take(2)
	if err != nil {
		return 0, err
	}
	return int(binary.LittleEndian.Uint16(b)), nil
}

func (c *ckptCursor) u32() (int, error) {
	b, err := c.take(4)
	if err != nil {
		return 0, err
	}
	return int(binary.LittleEndian.Uint32(b)), nil
}

func (c *ckptCursor) u64() (uint64, error) {
	b, err := c.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (c *ckptCursor) str() (string, error) {
	n, err := c.u16()
	if err != nil {
		return "", err
	}
	b, err := c.take(n)
	return string(b), err
}

// decodeCheckpoint validates and decodes a checkpoint file's contents.
func decodeCheckpoint(data []byte) (ckptMeta, []ckptTable, error) {
	var meta ckptMeta
	if len(data) < len(ckptMagic)+4 || string(data[:len(ckptMagic)]) != ckptMagic {
		return meta, nil, fmt.Errorf("wal: not a checkpoint file")
	}
	body := data[len(ckptMagic) : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crcTable) != want {
		return meta, nil, fmt.Errorf("wal: checkpoint checksum mismatch")
	}
	meta.bytes = len(data)
	c := &ckptCursor{b: body}
	var err error
	if meta.applied, err = c.u64(); err != nil {
		return meta, nil, err
	}
	if meta.cut, err = c.u64(); err != nil {
		return meta, nil, err
	}
	ntables, err := c.u32()
	if err != nil {
		return meta, nil, err
	}
	tables := make([]ckptTable, 0, ntables)
	for i := 0; i < ntables; i++ {
		name, err := c.str()
		if err != nil {
			return meta, nil, err
		}
		ncols, err := c.u16()
		if err != nil {
			return meta, nil, err
		}
		cols := make([]relation.Column, ncols)
		for j := range cols {
			cname, err := c.str()
			if err != nil {
				return meta, nil, err
			}
			kb, err := c.take(1)
			if err != nil {
				return meta, nil, err
			}
			kind, err := wireToKind(kb[0])
			if err != nil {
				return meta, nil, err
			}
			cols[j] = relation.Column{Name: cname, Type: kind}
		}
		nkey, err := c.u16()
		if err != nil {
			return meta, nil, err
		}
		keyNames := make([]string, nkey)
		for j := range keyNames {
			idx, err := c.u16()
			if err != nil {
				return meta, nil, err
			}
			if idx >= len(cols) {
				return meta, nil, fmt.Errorf("wal: checkpoint key index %d out of range", idx)
			}
			keyNames[j] = cols[idx].Name
		}
		rel := relation.New(relation.NewSchema(cols, keyNames...))
		nrows, err := c.u32()
		if err != nil {
			return meta, nil, err
		}
		for j := 0; j < nrows; j++ {
			nvals, err := c.u16()
			if err != nil {
				return meta, nil, err
			}
			row := make(relation.Row, 0, nvals)
			for k := 0; k < nvals; k++ {
				v, n, err := decodeValue(c.b)
				if err != nil {
					return meta, nil, err
				}
				row = append(row, v)
				c.b = c.b[n:]
			}
			if err := rel.Insert(row); err != nil {
				return meta, nil, fmt.Errorf("wal: checkpoint table %s: %w", name, err)
			}
		}
		tables = append(tables, ckptTable{name: name, rows: rel})
	}
	if len(c.b) != 0 {
		return meta, nil, fmt.Errorf("wal: %d trailing checkpoint bytes", len(c.b))
	}
	return meta, tables, nil
}

// readCheckpointMeta validates a checkpoint file and returns its header.
func readCheckpointMeta(fs FS, path string) (ckptMeta, error) {
	data, err := readAll(fs, path)
	if err != nil {
		return ckptMeta{}, err
	}
	meta, _, err := decodeCheckpoint(data)
	return meta, err
}

// checkpoint writes the claimed boundary snapshot durably (temp file,
// fsync, rename, directory sync) and then compacts: segments wholly at or
// below the checkpoint's cut, and the superseded checkpoint, are removed.
// Runs on the syncer goroutine.
func (l *Log) checkpoint(ck *boundarySnap) {
	final := ckptName(l.dir, ck.cut)
	tmp := final + tmpSuffix
	data := encodeCheckpoint(ck.v, ck.applied, ck.cut)
	f, err := l.fs.Create(tmp)
	if err == nil {
		_, err = f.Write(data)
		if err == nil {
			err = f.Sync()
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err == nil {
		err = l.fs.Rename(tmp, final)
	}
	if err == nil {
		err = l.fs.SyncDir(l.dir)
	}
	if err != nil {
		l.fail(fmt.Errorf("wal: checkpoint: %w", err))
		return
	}

	l.mu.Lock()
	prev := l.ckptName
	l.ckptName = final
	l.ckptCut = ck.cut
	l.ckptApplied = ck.applied
	l.ckptBytes = len(data)
	l.checkpoints++
	var drop []string
	kept := l.segs[:0]
	for _, s := range l.segs {
		if s.last > 0 && s.last <= ck.cut {
			drop = append(drop, s.name)
		} else {
			kept = append(kept, s)
		}
	}
	l.segs = kept
	l.mu.Unlock()

	// The new checkpoint is durable; retired segments and the superseded
	// checkpoint are now pure redundancy. A crash mid-removal leaves
	// debris that the next Open drops (superseded names sort below the
	// newest valid checkpoint).
	if prev != "" && prev != final {
		drop = append(drop, prev)
	}
	for _, name := range drop {
		if err := l.fs.Remove(name); err != nil {
			l.fail(fmt.Errorf("wal: compact: %w", err))
			return
		}
	}
	if len(drop) > 0 {
		if err := l.fs.SyncDir(l.dir); err != nil {
			l.fail(fmt.Errorf("wal: compact: %w", err))
			return
		}
		l.mu.Lock()
		l.compactions++
		l.mu.Unlock()
	}
}
