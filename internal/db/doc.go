// Package db implements the base-data substrate: a catalog of primary-keyed
// tables with foreign-key metadata and, crucially for SVC, *delta
// relations* — the paper's ∂D = {ΔR₁..ΔRₖ, ∇R₁..∇Rₖ} (Section 3.1).
//
// Updates are staged rather than applied: an insertion goes to ΔR, a
// deletion of an existing record goes to ∇R, and an update is modeled as a
// deletion followed by an insertion, exactly as the paper defines. A
// materialized view computed before the staged deltas are applied is stale;
// maintenance strategies and SVC's sampled cleaning both read the staged
// deltas. ApplyDeltas folds them into the base tables (the "maintenance
// period" boundary); ApplyVersion is its concurrent-serving form, folding
// exactly a pinned version's deltas while re-basing updates staged
// mid-cycle. ApplyVersionTables is the partial fold used by group
// maintenance cycles: it folds only the named tables' pinned deltas and
// leaves every other table's base and pending deltas untouched, so a
// scheduler can maintain a subset of views without retiring deltas their
// siblings have not seen. Partial folds do not advance the durable log's
// replay cut (the boundary record is skipped), trading a little replay
// work after a crash for never losing an unfolded record.
//
// Concurrency contract: all mutators (Create, Insert, the Stage* family,
// ApplyDeltas/ApplyVersion, SetAttachment, EnsureIndex) serialize on the
// database's internal writer lock and are safe to call from any
// goroutine. Readers never take that lock on the fast path: Pin returns
// an immutable copy-on-write Version — base tables, staged deltas, and
// serving attachments from one consistent cut, stamped with a
// monotonically increasing epoch — and any number of goroutines may
// evaluate against pinned versions while writers continue. The live
// accessors (Table.Rows, Insertions, Deletions) bypass that isolation and
// are only safe when no writer runs concurrently; concurrent readers
// should always pin. See DESIGN.md "Snapshot serving layer" for the
// publication protocol.
package db
