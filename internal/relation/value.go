package relation

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the scalar types a Value can hold.
type Kind uint8

// The supported value kinds. KindNull is the zero value so that the zero
// Value is a usable SQL NULL.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed scalar. The zero Value is NULL.
//
// Values are small immutable structs passed by value; they support the
// comparisons and arithmetic needed by the expression language and by the
// hash-sampling operator's key encoding.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String returns a string value.
func String(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Kind reports the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the value as an int64. Floats are truncated; NULL is 0.
func (v Value) AsInt() int64 {
	switch v.kind {
	case KindInt, KindBool:
		return v.i
	case KindFloat:
		return int64(v.f)
	default:
		return 0
	}
}

// AsFloat returns the value as a float64. NULL is 0.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindInt, KindBool:
		return float64(v.i)
	case KindFloat:
		return v.f
	default:
		return 0
	}
}

// AsString returns the string payload; non-strings format themselves.
func (v Value) AsString() string {
	if v.kind == KindString {
		return v.s
	}
	return v.String()
}

// AsBool reports the value's truthiness: non-zero numbers and true bools.
func (v Value) AsBool() bool {
	switch v.kind {
	case KindBool, KindInt:
		return v.i != 0
	case KindFloat:
		return v.f != 0
	default:
		return false
	}
}

// String implements fmt.Stringer.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Equal reports deep equality. NULL equals NULL for the purposes of row
// identity (primary-key handling); SQL tri-state logic lives in the
// expression layer instead.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		// Allow cross-numeric equality so Int(2) == Float(2.0).
		if v.isNumeric() && o.isNumeric() {
			return v.AsFloat() == o.AsFloat()
		}
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindString:
		return v.s == o.s
	case KindFloat:
		return v.f == o.f
	default:
		return v.i == o.i
	}
}

func (v Value) isNumeric() bool {
	return v.kind == KindInt || v.kind == KindFloat || v.kind == KindBool
}

// Compare orders two values: -1 if v < o, 0 if equal, +1 if v > o.
// NULL sorts before everything; mixed numeric kinds compare numerically;
// otherwise kinds compare by kind order then payload.
func (v Value) Compare(o Value) int {
	if v.kind == KindNull || o.kind == KindNull {
		switch {
		case v.kind == o.kind:
			return 0
		case v.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if v.isNumeric() && o.isNumeric() {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	// Same non-numeric kind: string.
	switch {
	case v.s < o.s:
		return -1
	case v.s > o.s:
		return 1
	default:
		return 0
	}
}

// Add returns v + o with numeric promotion; NULL operands yield NULL.
func (v Value) Add(o Value) Value {
	return numericOp(v, o, func(a, b float64) float64 { return a + b }, func(a, b int64) int64 { return a + b })
}

// Sub returns v - o with numeric promotion; NULL operands yield NULL.
func (v Value) Sub(o Value) Value {
	return numericOp(v, o, func(a, b float64) float64 { return a - b }, func(a, b int64) int64 { return a - b })
}

// Mul returns v * o with numeric promotion; NULL operands yield NULL.
func (v Value) Mul(o Value) Value {
	return numericOp(v, o, func(a, b float64) float64 { return a * b }, func(a, b int64) int64 { return a * b })
}

// Div returns v / o as a float; NULL operands or a zero divisor yield NULL.
func (v Value) Div(o Value) Value {
	if v.IsNull() || o.IsNull() || o.AsFloat() == 0 {
		return Null()
	}
	return Float(v.AsFloat() / o.AsFloat())
}

func numericOp(v, o Value, ff func(a, b float64) float64, fi func(a, b int64) int64) Value {
	if v.IsNull() || o.IsNull() {
		return Null()
	}
	if v.kind == KindFloat || o.kind == KindFloat {
		return Float(ff(v.AsFloat(), o.AsFloat()))
	}
	return Int(fi(v.AsInt(), o.AsInt()))
}

// appendEncoded appends a self-delimiting canonical encoding of v to dst.
// The encoding is injective across values of different kinds so it is safe
// for composite key construction and deterministic hashing.
func (v Value) appendEncoded(dst []byte) []byte {
	switch v.kind {
	case KindNull:
		return append(dst, 'n', 0)
	case KindInt:
		dst = append(dst, 'i')
		dst = strconv.AppendInt(dst, v.i, 10)
		return append(dst, 0)
	case KindFloat:
		// Encode the bit pattern so that e.g. -0.0 and 0.0 stay distinct
		// and the encoding is canonical.
		dst = append(dst, 'f')
		dst = strconv.AppendUint(dst, math.Float64bits(v.f), 16)
		return append(dst, 0)
	case KindString:
		// Escape NUL and the escape byte itself so the encoding stays
		// self-delimiting and injective for arbitrary string payloads.
		dst = append(dst, 's')
		for i := 0; i < len(v.s); i++ {
			switch c := v.s[i]; c {
			case 0x00:
				dst = append(dst, 0x01, 0x01)
			case 0x01:
				dst = append(dst, 0x01, 0x02)
			default:
				dst = append(dst, c)
			}
		}
		return append(dst, 0)
	case KindBool:
		dst = append(dst, 'b', byte('0'+v.i))
		return append(dst, 0)
	default:
		return append(dst, '?', 0)
	}
}

// Encode returns the canonical self-delimiting encoding of the value.
func (v Value) Encode() []byte { return v.appendEncoded(nil) }
