package estimator

import (
	"fmt"
	"math"

	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/stats"
)

// Agg enumerates the aggregate functions supported on queries against a
// view.
type Agg uint8

// Query aggregates. Count ignores Attr.
const (
	CountQ Agg = iota
	SumQ
	AvgQ
	MedianQ
	PercentileQ
	MinQ
	MaxQ
)

// String returns the SQL-ish name.
func (a Agg) String() string {
	return [...]string{"count", "sum", "avg", "median", "percentile", "min", "max"}[a]
}

// Query is an aggregate query over a view:
//
//	SELECT agg(attr) FROM view WHERE pred
//
// as in the paper's Problem 2. Group-by queries are modeled by running one
// Query per group (see GroupEstimate) or by folding the group predicate
// into Pred, as the paper does (footnote 1).
type Query struct {
	Agg  Agg
	Attr string // aggregation attribute; unused for CountQ
	// Pct is the percentile in (0,1) for PercentileQ.
	Pct float64
	// Pred restricts the rows (nil means all rows).
	Pred expr.Expr
}

// Sum returns SELECT sum(attr) WHERE pred.
func Sum(attr string, pred expr.Expr) Query { return Query{Agg: SumQ, Attr: attr, Pred: pred} }

// Count returns SELECT count(1) WHERE pred.
func Count(pred expr.Expr) Query { return Query{Agg: CountQ, Pred: pred} }

// Avg returns SELECT avg(attr) WHERE pred.
func Avg(attr string, pred expr.Expr) Query { return Query{Agg: AvgQ, Attr: attr, Pred: pred} }

// Median returns SELECT median(attr) WHERE pred.
func Median(attr string, pred expr.Expr) Query { return Query{Agg: MedianQ, Attr: attr, Pred: pred} }

// Percentile returns SELECT percentile(attr, pct) WHERE pred.
func Percentile(attr string, pct float64, pred expr.Expr) Query {
	return Query{Agg: PercentileQ, Attr: attr, Pct: pct, Pred: pred}
}

// Min returns SELECT min(attr) WHERE pred.
func Min(attr string, pred expr.Expr) Query { return Query{Agg: MinQ, Attr: attr, Pred: pred} }

// Max returns SELECT max(attr) WHERE pred.
func Max(attr string, pred expr.Expr) Query { return Query{Agg: MaxQ, Attr: attr, Pred: pred} }

// matching extracts the aggregation attribute values of rows satisfying
// the predicate. For CountQ the values are 1 per matching row.
func (q Query) matching(rel *relation.Relation) ([]float64, error) {
	var pred expr.Expr
	if q.Pred != nil {
		bound, err := q.Pred.Bind(rel.Schema())
		if err != nil {
			return nil, fmt.Errorf("estimator: %w", err)
		}
		pred = bound
	}
	attrIdx := -1
	if q.Agg != CountQ {
		attrIdx = rel.Schema().ColIndex(q.Attr)
		if attrIdx < 0 {
			return nil, fmt.Errorf("estimator: attribute %q not in view schema [%s]", q.Attr, rel.Schema())
		}
	}
	var vals []float64
	matches := predMatches(rel, pred)
	for ri, row := range rel.Rows() {
		if !matches[ri] {
			continue
		}
		if q.Agg == CountQ {
			vals = append(vals, 1)
			continue
		}
		v := row[attrIdx]
		if v.IsNull() {
			continue
		}
		vals = append(vals, v.AsFloat())
	}
	return vals, nil
}

// RunExact evaluates the query exactly over a full relation. It serves as
// the ground truth q(S′), the stale baseline q(S), and the rstale term of
// SVC+CORR.
func RunExact(rel *relation.Relation, q Query) (float64, error) {
	vals, err := q.matching(rel)
	if err != nil {
		return 0, err
	}
	switch q.Agg {
	case CountQ:
		return float64(len(vals)), nil
	case SumQ:
		return stats.Sum(vals), nil
	case AvgQ:
		if len(vals) == 0 {
			return math.NaN(), nil
		}
		return stats.Mean(vals), nil
	case MedianQ:
		return stats.Median(vals), nil
	case PercentileQ:
		return stats.Quantile(vals, q.Pct), nil
	case MinQ:
		if len(vals) == 0 {
			return math.NaN(), nil
		}
		lo := vals[0]
		for _, v := range vals {
			if v < lo {
				lo = v
			}
		}
		return lo, nil
	case MaxQ:
		if len(vals) == 0 {
			return math.NaN(), nil
		}
		hi := vals[0]
		for _, v := range vals {
			if v > hi {
				hi = v
			}
		}
		return hi, nil
	default:
		return 0, fmt.Errorf("estimator: unknown aggregate %v", q.Agg)
	}
}

// Estimate is an approximate query answer with its uncertainty.
type Estimate struct {
	// Value is the point estimate of q(S′).
	Value float64
	// Lo and Hi bound the estimate at the stated confidence (CLT or
	// bootstrap, depending on Method). For min/max they carry the
	// Cantelli-bounded range and TailProb is set instead.
	Lo, Hi float64
	// Confidence is the nominal coverage of [Lo, Hi] (e.g. 0.95).
	Confidence float64
	// TailProb, for min/max only, is the Cantelli bound on the
	// probability that an element beyond Value exists in the unsampled
	// view.
	TailProb float64
	// Method names the estimator ("svc+aqp", "svc+corr").
	Method string
	// K is the number of sample rows the estimate was computed from.
	K int
	// AsOfEpoch is the publication epoch of the catalog version the
	// estimate was computed against (0 when the query did not run through
	// the snapshot serving layer). Within one serving session it is
	// monotonically non-decreasing across successive queries: a reader can
	// use it to detect which maintenance boundary an answer reflects.
	AsOfEpoch uint64
}

// HalfWidth returns (Hi−Lo)/2.
func (e Estimate) HalfWidth() float64 { return (e.Hi - e.Lo) / 2 }

// Covers reports whether the interval contains v.
func (e Estimate) Covers(v float64) bool { return v >= e.Lo && v <= e.Hi }

// RelativeError returns |est−truth|/|truth| (using a small floor on the
// denominator so zero-valued truths do not blow up), the paper's accuracy
// metric.
func RelativeError(est, truth float64) float64 {
	denom := math.Abs(truth)
	if denom < 1e-12 {
		denom = 1e-12
	}
	return math.Abs(est-truth) / denom
}
