package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance (divide by n), matching the
// plug-in estimator used in the paper's CLT bounds.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Stdev returns the population standard deviation.
func Stdev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Covariance returns the population covariance of two equal-length series.
func Covariance(xs, ys []float64) float64 {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	s := 0.0
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(n)
}

// Sum returns the sum of the series.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) of xs using linear
// interpolation between order statistics; it sorts a copy.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p)
}

func quantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// NormalQuantile returns Φ⁻¹(p), the standard normal inverse CDF, e.g.
// ≈1.96 for p = 0.975. Computed from the stdlib's Erfinv.
func NormalQuantile(p float64) float64 {
	return math.Sqrt2 * math.Erfinv(2*p-1)
}

// GammaForConfidence returns the two-sided Gaussian tail value γ for a
// confidence level (0.95 → ≈1.96, 0.99 → ≈2.57), as used in the paper's
// confidence intervals.
func GammaForConfidence(level float64) float64 {
	return NormalQuantile(0.5 + level/2)
}

// BinomialCI returns a two-sided normal-approximation confidence interval
// for a binomial proportion (hits successes out of n trials), clamped to
// [0, 1]. The workload dashboard uses it to put error bands on measured
// CI coverage rates; n = 0 yields the vacuous [0, 1].
func BinomialCI(hits, n int, confidence float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	p := float64(hits) / float64(n)
	half := GammaForConfidence(confidence) * math.Sqrt(p*(1-p)/float64(n))
	return math.Max(0, p-half), math.Min(1, p+half)
}

// CantelliUpper bounds P(X ≥ μ + eps) ≤ var/(var + eps²) — the one-sided
// Chebyshev (Cantelli) inequality the paper uses to bound max-query
// corrections (Appendix 12.1.1).
func CantelliUpper(variance, eps float64) float64 {
	if eps <= 0 {
		return 1
	}
	return variance / (variance + eps*eps)
}

// Bootstrap resamples xs with replacement iters times, applies stat to
// each resample, and returns the empirical lo/hi percentile interval
// (e.g. 0.025, 0.975 for a 95% interval).
func Bootstrap(rng *rand.Rand, xs []float64, iters int, stat func([]float64) float64, lo, hi float64) (float64, float64, error) {
	if len(xs) == 0 {
		return 0, 0, fmt.Errorf("stats: bootstrap over empty sample")
	}
	if iters <= 0 {
		return 0, 0, fmt.Errorf("stats: bootstrap needs positive iterations")
	}
	vals := make([]float64, iters)
	resample := make([]float64, len(xs))
	for it := 0; it < iters; it++ {
		for i := range resample {
			resample[i] = xs[rng.Intn(len(xs))]
		}
		vals[it] = stat(resample)
	}
	sort.Float64s(vals)
	return quantileSorted(vals, lo), quantileSorted(vals, hi), nil
}

// BootstrapPaired resamples row indexes with replacement over two paired
// series (the corresponding samples), applies stat to each resampled pair,
// and returns the lo/hi percentile interval. Pairing preserves the
// correlation that SVC+CORR's correction estimate relies on.
func BootstrapPaired(rng *rand.Rand, xs, ys []float64, iters int, stat func(xs, ys []float64) float64, lo, hi float64) (float64, float64, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return 0, 0, fmt.Errorf("stats: paired bootstrap needs equal non-empty samples")
	}
	if iters <= 0 {
		return 0, 0, fmt.Errorf("stats: bootstrap needs positive iterations")
	}
	vals := make([]float64, iters)
	rx := make([]float64, len(xs))
	ry := make([]float64, len(ys))
	for it := 0; it < iters; it++ {
		for i := range rx {
			j := rng.Intn(len(xs))
			rx[i], ry[i] = xs[j], ys[j]
		}
		vals[it] = stat(rx, ry)
	}
	sort.Float64s(vals)
	return quantileSorted(vals, lo), quantileSorted(vals, hi), nil
}
