package clean

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"github.com/sampleclean/svc/internal/algebra"
	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/hashing"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/view"
)

// SampleName returns the context binding name of a view's materialized
// stale sample Ŝ.
func SampleName(viewName string) string { return "ŝ·" + viewName }

// Cleaner owns the materialized stale sample and the rewritten cleaning
// expression for one view.
type Cleaner struct {
	maintainer *view.Maintainer
	ratio      float64
	hasher     hashing.Hasher
	attrs      []string     // hashed attribute tuple (usually the view key)
	cleanExpr  algebra.Node // C: reads Ŝ (and, if blocked, S) plus ∂D
	// evalExpr is the execution form of cleanExpr (selections and
	// projections fused into base scans); Expression() returns the
	// unfused cleanExpr, which outlier eligibility and tests inspect.
	evalExpr algebra.Node
	// sample is Ŝ, materialized and published atomically: cleanings read
	// whatever version is current, Adopt swaps in the next one, and a
	// reader holding the old pointer stays consistent.
	sample    atomic.Pointer[relation.Relation]
	usesFullS bool // true when push-down could not reach the stale scan
	parallel  int  // intra-operator workers for cleaning evaluations
	// parallelSet records that SetParallelism was called: an explicit
	// setting overrides a pinned context's parallelism in BOTH
	// directions (a cleaner set serial stays serial under a parallel
	// pin), where an unset cleaner inherits the context's.
	parallelSet bool
	// source, when set, supplies the consistent (pin, S, Ŝ) triple Clean
	// evaluates against for sourceDB (see SetServingSource).
	source   ServingSource
	sourceDB *db.Database
}

// ServingSource returns a consistent (pinned catalog version, stale view,
// stale sample) triple — all three from one publication, never a mix
// across a maintenance boundary.
type ServingSource func() (pin *db.Version, viewData, sample *relation.Relation)

// SetServingSource installs the triple provider Clean uses when invoked
// with the given database. A serving layer that publishes (S, Ŝ)
// atomically with catalog versions (package svc does, via db attachments)
// registers its lookup here so that Clean — reachable through the public
// Cleaner handle during concurrent serving — can never read a catalog
// version from after a maintenance boundary together with view/sample
// pointers from before it. Clean calls against a DIFFERENT database (e.g.
// a Snapshot clone in an experiment) bypass the source and evaluate that
// database directly. Must be set before concurrent use (svc.New does it
// at construction).
func (c *Cleaner) SetServingSource(d *db.Database, src ServingSource) {
	c.source, c.sourceDB = src, d
}

// New builds a cleaner for the maintained view at sampling ratio m and
// materializes the initial stale sample Ŝ (a one-time cost, amortized over
// all subsequent cleanings — the paper's "Stale Sample MV" in Figure 1).
// Sampling hashes the view's primary key.
func New(m *view.Maintainer, ratio float64, hasher hashing.Hasher) (*Cleaner, error) {
	key := m.View().KeyNames()
	if len(key) == 0 {
		return nil, fmt.Errorf("clean: view %s has no primary key to sample on", m.View().Name())
	}
	return NewOnAttrs(m, key, ratio, hasher)
}

// NewOnAttrs builds a cleaner that hashes an arbitrary attribute tuple of
// the view instead of its primary key — the paper's Appendix 12.5
// extension. Hashing a non-unique attribute still includes every
// individual row with probability m (estimates stay unbiased), but rows
// sharing the attribute value enter and leave the sample together, so the
// sample size has extra variance m(1−m)µ² + (1−m)σ² for duplication mean
// µ and variance σ². In exchange, η can push through arbitrary equality
// joins on the hashed attribute.
func NewOnAttrs(m *view.Maintainer, attrs []string, ratio float64, hasher hashing.Hasher) (*Cleaner, error) {
	if ratio <= 0 || ratio > 1 {
		return nil, fmt.Errorf("clean: sampling ratio %v outside (0,1]", ratio)
	}
	if hasher == nil {
		hasher = hashing.Default
	}
	v := m.View()
	if len(attrs) == 0 {
		return nil, fmt.Errorf("clean: need at least one sampling attribute")
	}
	for _, a := range attrs {
		if !v.Schema().HasCol(a) {
			return nil, fmt.Errorf("clean: view %s has no attribute %q", v.Name(), a)
		}
	}
	pushed, err := algebra.PushDownHash(m.Expression(), attrs, ratio, hasher)
	if err != nil {
		return nil, fmt.Errorf("clean: %s: %w", v.Name(), err)
	}
	c := &Cleaner{maintainer: m, ratio: ratio, hasher: hasher, attrs: append([]string(nil), attrs...)}
	c.cleanExpr = c.substituteSampleScan(pushed)
	c.evalExpr = algebra.PushDownScans(c.cleanExpr)
	algebra.Walk(c.cleanExpr, func(n algebra.Node) {
		if s, ok := n.(*algebra.ScanNode); ok && s.Name() == view.StaleName(v.Name()) {
			c.usesFullS = true
		}
	})
	if err := c.Reset(); err != nil {
		return nil, err
	}
	return c, nil
}

// substituteSampleScan replaces η(Scan(S)) with Scan(Ŝ) so the cleaning
// expression consumes the materialized sample directly instead of
// re-filtering the full view.
func (c *Cleaner) substituteSampleScan(n algebra.Node) algebra.Node {
	v := c.maintainer.View()
	if h, ok := n.(*algebra.HashFilterNode); ok {
		if s, ok := h.Children()[0].(*algebra.ScanNode); ok && s.Name() == view.StaleName(v.Name()) {
			if h.Ratio() == c.ratio && sameAttrs(h.Attrs(), c.attrs) {
				return algebra.Scan(SampleName(v.Name()), s.Schema())
			}
		}
	}
	children := n.Children()
	if len(children) == 0 {
		return n
	}
	newCh := make([]algebra.Node, len(children))
	changed := false
	for i, ch := range children {
		newCh[i] = c.substituteSampleScan(ch)
		if newCh[i] != ch {
			changed = true
		}
	}
	if !changed {
		return n
	}
	return n.WithChildren(newCh)
}

func sameAttrs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Reset re-materializes the stale sample Ŝ from the current view contents
// by scanning and hashing S. Called once at construction and again after
// full view maintenance replaces S.
func (c *Cleaner) Reset() error {
	v := c.maintainer.View()
	hf, err := algebra.HashFilter(
		algebra.Scan(view.StaleName(v.Name()), v.Schema()),
		c.attrs, c.ratio, c.hasher)
	if err != nil {
		return err
	}
	ctx := algebra.NewContext(nil)
	ctx.Parallelism = c.effectiveParallelism(0)
	v.BindInto(ctx)
	sample, err := hf.Eval(ctx)
	if err != nil {
		return fmt.Errorf("clean: materialize sample of %s: %w", v.Name(), err)
	}
	c.sample.Store(sample)
	return nil
}

// SetParallelism fixes the intra-operator worker count for every
// evaluation the cleaner runs — sample rematerialization (Reset) and
// cleaning (Clean/CleanAt). An explicit setting wins over the pinned
// catalog version's own parallelism in both directions: a cleaner set to
// n > 1 runs parallel under a serial pin, and a cleaner explicitly set
// serial (n <= 1) runs serial under a parallel pin. Cleaners that never
// call SetParallelism inherit the pin's setting unchanged.
func (c *Cleaner) SetParallelism(n int) { c.parallel, c.parallelSet = n, true }

// effectiveParallelism resolves the worker count for an evaluation whose
// pinned context carries pinned workers: an explicit SetParallelism wins
// in both directions, otherwise the pin's setting is inherited.
func (c *Cleaner) effectiveParallelism(pinned int) int {
	if c.parallelSet {
		return c.parallel
	}
	return pinned
}

// Ratio returns the sampling ratio m.
func (c *Cleaner) Ratio() float64 { return c.ratio }

// SampleAttrs returns the hashed attribute tuple.
func (c *Cleaner) SampleAttrs() []string { return append([]string(nil), c.attrs...) }

// Hasher returns the deterministic hash in use.
func (c *Cleaner) Hasher() hashing.Hasher { return c.hasher }

// StaleSample returns the materialized stale sample Ŝ (immutable; Adopt
// publishes replacements).
func (c *Cleaner) StaleSample() *relation.Relation { return c.sample.Load() }

// Expression returns the optimized cleaning expression C (the paper's
// Figure 3 right-hand side) for inspection.
func (c *Cleaner) Expression() algebra.Node { return c.cleanExpr }

// UsesFullView reports whether push-down failed to reach the stale view
// scan, forcing C to read the full view (the V21/V22 situation).
func (c *Cleaner) UsesFullView() bool { return c.usesFullS }

// Stats reports the cost of one cleaning run.
type Stats struct {
	// RowsTouched counts rows processed by the cleaning expression
	// (machine-independent cost proxy, comparable with
	// view.MaintainStats.RowsTouched).
	RowsTouched int64
	// Elapsed is the wall-clock time of the cleaning evaluation.
	Elapsed time.Duration
}

// Samples is the pair of corresponding samples handed to the estimators.
type Samples struct {
	// Stale is Ŝ, the uniform sample of the stale view.
	Stale *relation.Relation
	// Fresh is Ŝ′, the cleaned (up-to-date) sample.
	Fresh *relation.Relation
	// Ratio is the sampling ratio m both samples were drawn with.
	Ratio float64
	// Stats reports the cleaning cost.
	Stats Stats
}

// Clean evaluates the cleaning expression against the staged deltas and
// returns the corresponding sample pair (Ŝ, Ŝ′). Neither the view nor the
// stored sample is modified; call Adopt to roll the sample forward.
//
// With a ServingSource installed and d the serving database, the triple
// comes from one publication (safe during concurrent serving); otherwise
// the pin, view, and sample are read individually, which is only
// consistent when no maintenance runs concurrently.
func (c *Cleaner) Clean(d *db.Database) (*Samples, error) {
	if c.source != nil && d == c.sourceDB {
		pin, viewData, sample := c.source()
		return c.CleanAt(pin, viewData, sample)
	}
	return c.CleanAt(d.Pin(), c.maintainer.View().Data(), c.StaleSample())
}

// CleanAt evaluates the cleaning expression against a pinned catalog
// version, an explicit stale view S, and an explicit stale sample Ŝ — the
// snapshot-serving form of Clean. All inputs are immutable, so any number
// of CleanAt evaluations run concurrently with each other, with staging
// writers, and with a maintenance cycle preparing the next publication.
func (c *Cleaner) CleanAt(pin *db.Version, viewData, sample *relation.Relation) (*Samples, error) {
	v := c.maintainer.View()
	ctx := pin.Context()
	ctx.Parallelism = c.effectiveParallelism(ctx.Parallelism)
	ctx.Bind(view.StaleName(v.Name()), viewData)
	ctx.Bind(SampleName(v.Name()), sample)

	start := time.Now()
	fresh, err := c.evalClean(ctx, sample.Len())
	if err != nil {
		return nil, fmt.Errorf("clean: fresh sample of %s: %w", v.Name(), err)
	}
	elapsed := time.Since(start)

	return &Samples{
		Stale: sample,
		Fresh: fresh,
		Ratio: c.ratio,
		Stats: Stats{RowsTouched: ctx.RowsTouched, Elapsed: elapsed},
	}, nil
}

// evalClean consumes the cleaning expression's batched pipeline directly,
// upserting rows into the fresh sample as they stream out — the sample is
// the only relation the cleaning run materializes (interior operators fuse
// or hand rows across breaker boundaries without building relations).
func (c *Cleaner) evalClean(ctx *algebra.Context, sizeHint int) (*relation.Relation, error) {
	schema := c.evalExpr.Schema()
	out := relation.NewSized(schema, sizeHint)
	it := algebra.NewIterator(c.evalExpr)
	if err := it.Open(ctx); err != nil {
		return nil, err
	}
	defer it.Close()
	keyed := schema.HasKey()
	store := func(row relation.Row) error {
		if keyed {
			_, err := out.Upsert(row)
			return err
		}
		return out.Insert(row)
	}
	var rowBuf []relation.Row
	for {
		b, err := it.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		ctx.RowsTouched += int64(b.Len())
		if b.Columnar() {
			// Columnar drain: materialize the batch's selected rows into
			// one slab (the sample retains them) and release the batch so
			// its column vectors recycle across cleaning cycles.
			rowBuf = b.CopyRows(rowBuf[:0])
			for _, row := range rowBuf {
				if err := store(row); err != nil {
					return nil, err
				}
			}
			b.Release()
			continue
		}
		for _, row := range b.Rows() {
			if err := store(row); err != nil {
				return nil, err
			}
		}
		b.ReleaseUnlessOwned()
	}
}

// Adopt replaces the stored stale sample with a cleaned sample. Use this
// when the base deltas the sample was cleaned against have been applied
// (db.ApplyDeltas) and the full view has been maintained, so that Ŝ again
// corresponds to S: by Theorem 1, the cleaned sample equals η(S′) exactly.
//
// The cleaned sample's computed columns are untyped; Adopt coerces them
// back to the view's declared schema so the next cleaning round's sample
// scan type-checks.
func (c *Cleaner) Adopt(s *Samples) error {
	out, err := c.CoerceSample(s)
	if err != nil {
		return err
	}
	c.sample.Store(out)
	return nil
}

// CoerceSample converts a cleaned sample Ŝ′ back to the view's declared
// schema without publishing it — the preparation half of Adopt. The
// serving layer uses it to build the next sample off to the side and
// publish it atomically with the rest of a maintenance cycle
// (AdoptRelation).
func (c *Cleaner) CoerceSample(s *Samples) (*relation.Relation, error) {
	target := c.maintainer.View().Schema()
	out := relation.New(target)
	for _, row := range s.Fresh.Rows() {
		conv := make(relation.Row, len(row))
		for i, val := range row {
			conv[i] = coerceValue(target.Col(i).Type, val)
		}
		if err := out.Insert(conv); err != nil {
			return nil, fmt.Errorf("clean: adopt sample: %w", err)
		}
	}
	return out, nil
}

// AdoptRelation publishes an already-coerced sample as the new Ŝ.
func (c *Cleaner) AdoptRelation(r *relation.Relation) { c.sample.Store(r) }

func coerceValue(want relation.Kind, v relation.Value) relation.Value {
	if v.IsNull() {
		return v
	}
	switch want {
	case relation.KindInt:
		if v.Kind() != relation.KindInt {
			return relation.Int(v.AsInt())
		}
	case relation.KindFloat:
		if v.Kind() != relation.KindFloat {
			return relation.Float(v.AsFloat())
		}
	}
	return v
}

// CorrespondenceReport summarizes a Property 1 check between a sample pair
// and the true up-to-date view (test/diagnostic use: computing the true
// view defeats the purpose in production).
type CorrespondenceReport struct {
	// SampleSubsetOfTrue: every row of Ŝ′ appears in S′ (with equal
	// values).
	SampleSubsetOfTrue bool
	// NoSuperfluous: no key sampled in Ŝ that was deleted from S′
	// survives into Ŝ′.
	NoSuperfluous bool
	// KeysPreserved: every key in Ŝ that still exists in S′ also appears
	// in Ŝ′.
	KeysPreserved bool
	// MissingSampled counts sampled missing rows (rows of Ŝ′ absent from
	// the stale view) — their expectation is m·|missing|.
	MissingSampled int
}

// Ok reports whether all boolean clauses of Property 1 hold.
func (r CorrespondenceReport) Ok() bool {
	return r.SampleSubsetOfTrue && r.NoSuperfluous && r.KeysPreserved
}

// CheckCorrespondence verifies Property 1 given the stale view S, the true
// up-to-date view S′, and the corresponding samples.
func CheckCorrespondence(staleView, trueView *relation.Relation, s *Samples) CorrespondenceReport {
	keyIdx := trueView.Schema().Key()
	rep := CorrespondenceReport{SampleSubsetOfTrue: true, NoSuperfluous: true, KeysPreserved: true}

	for _, row := range s.Fresh.Rows() {
		k := row.KeyOf(keyIdx)
		trueRow, ok := trueView.GetByEncodedKey(k)
		if !ok || !rowsAlmostEqual(row, trueRow) {
			rep.SampleSubsetOfTrue = false
		}
		if _, wasStale := staleView.GetByEncodedKey(k); !wasStale {
			rep.MissingSampled++
		}
	}
	for _, row := range s.Stale.Rows() {
		k := row.KeyOf(keyIdx)
		_, inTrue := trueView.GetByEncodedKey(k)
		_, inFresh := s.Fresh.GetByEncodedKey(k)
		if !inTrue && inFresh {
			rep.NoSuperfluous = false
		}
		if inTrue && !inFresh {
			rep.KeysPreserved = false
		}
	}
	return rep
}

// rowsAlmostEqual compares rows with relative tolerance on floats, since
// incremental maintenance accumulates float sums in a different order than
// recomputation.
func rowsAlmostEqual(a, b relation.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind() == relation.KindFloat || b[i].Kind() == relation.KindFloat {
			x, y := a[i].AsFloat(), b[i].AsFloat()
			diff := math.Abs(x - y)
			scale := math.Max(math.Abs(x), math.Abs(y))
			if diff > 1e-9*math.Max(scale, 1) {
				return false
			}
			continue
		}
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
