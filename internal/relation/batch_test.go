package relation

import "testing"

func TestBatchAppendAndTruncate(t *testing.T) {
	b := GetBatch()
	defer b.Release()
	r1 := Row{Int(1), String("a")}
	r2 := Row{Int(2), String("b")}
	b.Append(r1)
	b.AppendRows([]Row{r2})
	if b.Len() != 2 || b.Owned() {
		t.Fatalf("len=%d owned=%v", b.Len(), b.Owned())
	}
	if !b.Row(0).Equal(r1) || !b.Row(1).Equal(r2) {
		t.Fatal("rows do not round-trip")
	}
	b.Truncate(1)
	if b.Len() != 1 || !b.Row(0).Equal(r1) {
		t.Fatal("truncate should keep the prefix")
	}
}

func TestBatchAllocOwnership(t *testing.T) {
	b := GetBatch()
	row := b.Alloc(3)
	row[0], row[1], row[2] = Int(7), Float(1.5), String("x")
	if !b.Owned() {
		t.Fatal("Alloc must mark the batch owned")
	}
	if got := b.Row(0); !got.Equal(Row{Int(7), Float(1.5), String("x")}) {
		t.Fatalf("arena row = %v", got)
	}
	// Alloc rows are not zeroed; callers fill every slot. Fill a second
	// row fully and check the first is untouched (slab stability).
	row2 := b.Alloc(3)
	row2[0], row2[1], row2[2] = Int(8), Int(9), Int(10)
	if !b.Row(0).Equal(Row{Int(7), Float(1.5), String("x")}) {
		t.Fatal("second Alloc corrupted the first row")
	}
	b.Release()
}

// Rows handed out before a slab grows must keep their values: growth
// allocates a new slab without copying or moving the old one.
func TestBatchAllocSlabGrowthKeepsRows(t *testing.T) {
	b := GetBatch()
	defer b.Release()
	const width = 5
	var first Row
	for i := 0; i < BatchCap; i++ {
		r := b.Alloc(width)
		for j := range r {
			r[j] = Int(int64(i*width + j))
		}
		if i == 0 {
			first = r
		}
	}
	for j := 0; j < width; j++ {
		if first[j].AsInt() != int64(j) {
			t.Fatalf("row 0 slot %d = %v after slab growth", j, first[j])
		}
	}
	for j := 0; j < width; j++ {
		want := int64((BatchCap-1)*width + j)
		if got := b.Row(BatchCap - 1)[j].AsInt(); got != want {
			t.Fatalf("last row slot %d = %d, want %d", j, got, want)
		}
	}
}

func TestBatchPinDisablesRelease(t *testing.T) {
	b := GetBatch()
	r := b.Alloc(1)
	r[0] = Int(42)
	b.Pin()
	b.Release() // must be a no-op
	if b.Len() != 1 || b.Row(0)[0].AsInt() != 42 {
		t.Fatal("Release recycled a pinned batch")
	}
	// ReleaseUnlessOwned on an owned batch is also a no-op.
	b2 := GetBatch()
	r2 := b2.Alloc(1)
	r2[0] = Int(7)
	b2.ReleaseUnlessOwned()
	if b2.Len() != 1 || b2.Row(0)[0].AsInt() != 7 {
		t.Fatal("ReleaseUnlessOwned recycled an owned batch")
	}
}

// A released batch must come back from the pool empty and unowned even if
// it previously carried arena rows.
func TestBatchPoolRecycling(t *testing.T) {
	for i := 0; i < 100; i++ {
		b := GetBatch()
		if b.Len() != 0 || b.Owned() {
			t.Fatalf("pool handed out a dirty batch: len=%d owned=%v", b.Len(), b.Owned())
		}
		r := b.Alloc(4)
		r[0], r[1], r[2], r[3] = Int(1), Int(2), Int(3), Int(4)
		b.Release()
	}
}
