package wal

import (
	"fmt"

	"github.com/sampleclean/svc/internal/db"
)

// RecoveryStats summarizes one Recover pass.
type RecoveryStats struct {
	// CheckpointSeq/CheckpointApplied identify the restored checkpoint
	// (zero when the log had none and replay started from the caller's
	// catalog as-is).
	CheckpointSeq     uint64
	CheckpointApplied uint64
	// TablesRestored counts base-table images loaded from the checkpoint.
	TablesRestored int
	// Records counts replayed stage/base records; Boundaries counts
	// replayed maintenance boundaries (each one an ApplyDeltas fold).
	Records    int
	Boundaries int
	// PendingRecords counts records past the last boundary: they are
	// re-staged and will be folded by the next maintenance cycle, exactly
	// as they were pending when the process died.
	PendingRecords int
	// AppliedSeq is the catalog's maintenance-boundary counter after
	// recovery — equal to what the crashed process last acknowledged.
	AppliedSeq uint64
}

// Recover replays the log into d: restore the newest checkpoint's base
// images (if any), then stream the record suffix in sequence order,
// re-staging mutations and re-folding each maintenance boundary at the
// same cut the original ApplyVersion used. Replay is idempotent by
// construction — records at or below the checkpoint cut are skipped, and
// each boundary folds exactly the records its cut covers — so the
// recovered catalog's applied counter, pending deltas, and base tables
// match the crashed process's last acknowledged state.
//
// Call Recover after creating the schema (table creation is not logged:
// the caller recreates its tables, typically by reloading a deterministic
// dataset, before replay) and before attaching the log or staging new
// writes. d must not have a DeltaLog attached, so replayed mutations are
// not re-logged.
func (l *Log) Recover(d *db.Database) (RecoveryStats, error) {
	var st RecoveryStats
	if d.DeltaLog() != nil {
		return st, fmt.Errorf("wal: recover: detach the delta log first (replay must not re-log)")
	}
	l.mu.Lock()
	if err := l.usableLocked(); err != nil {
		l.mu.Unlock()
		return st, err
	}
	ckpt := l.ckptName
	skip := l.ckptCut
	segs := append([]segment(nil), l.segs...)
	l.mu.Unlock()

	if ckpt != "" {
		data, err := readAll(l.fs, ckpt)
		if err != nil {
			return st, fmt.Errorf("wal: recover: %w", err)
		}
		meta, tables, err := decodeCheckpoint(data)
		if err != nil {
			return st, fmt.Errorf("wal: recover %s: %w", ckpt, err)
		}
		for _, ct := range tables {
			t := d.Table(ct.name)
			if t == nil {
				if t, err = d.Create(ct.name, ct.rows.Schema()); err != nil {
					return st, fmt.Errorf("wal: recover: %w", err)
				}
			}
			if err := t.RestoreBase(ct.rows); err != nil {
				return st, fmt.Errorf("wal: recover: %w", err)
			}
		}
		d.ForceAppliedSeq(meta.applied)
		st.CheckpointSeq = meta.cut
		st.CheckpointApplied = meta.applied
		st.TablesRestored = len(tables)
	}

	// Stream the suffix. Stage/base records buffer until a boundary says
	// which of them the original fold covered: those (seq ≤ cut) are
	// staged and folded; the rest stay buffered for a later boundary or,
	// at the log's end, are re-staged as the pending set.
	var buffered []record
	stage := func(rs []record) error {
		for i := range rs {
			if err := replayStage(d, &rs[i]); err != nil {
				return err
			}
		}
		st.Records += len(rs)
		return nil
	}
	for _, seg := range segs {
		err := l.forEachSegRecord(seg, func(r record) error {
			if r.seq <= skip {
				return nil
			}
			if r.typ != recBoundary {
				buffered = append(buffered, r)
				return nil
			}
			covered := 0
			for covered < len(buffered) && buffered[covered].seq <= r.cut {
				covered++
			}
			if err := stage(buffered[:covered]); err != nil {
				return err
			}
			buffered = buffered[covered:]
			if err := d.RecoverApply(r.applied); err != nil {
				return err
			}
			st.Boundaries++
			return nil
		})
		if err != nil {
			return st, err
		}
	}
	if err := stage(buffered); err != nil {
		return st, err
	}
	st.PendingRecords = len(buffered)
	st.AppliedSeq = d.Pin().AppliedSeq()
	return st, nil
}

// replayStage re-stages one logged record (see db.Table.RecoverStage for
// the relaxed replay semantics).
func replayStage(d *db.Database, r *record) error {
	t := d.Table(r.table)
	if t == nil {
		return fmt.Errorf("wal: recover seq %d: unknown table %q (recreate the schema before replay)", r.seq, r.table)
	}
	var op db.DeltaOp
	switch r.typ {
	case recInsert:
		op = db.OpInsert
	case recUpdate:
		op = db.OpUpdate
	case recDelete:
		op = db.OpDelete
	case recBase:
		op = db.OpBase
	default:
		return fmt.Errorf("wal: recover seq %d: unknown record type %d", r.seq, r.typ)
	}
	if err := t.RecoverStage(op, r.row); err != nil {
		return fmt.Errorf("wal: recover seq %d (%s): %w", r.seq, r.table, err)
	}
	return nil
}

// Attach connects the log to the catalog: every later StageInsert/
// StageUpdate/StageDelete/Insert records through it before acknowledging,
// and every ApplyVersion logs its boundary. Attach after Recover.
func (l *Log) Attach(d *db.Database) { d.SetDeltaLog(l) }
