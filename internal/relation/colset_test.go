package relation

import (
	"bytes"
	"math/rand"
	"testing"
)

// fuzzSetRows builds n rows over every kind, with NULLs, NaN/−0.0, and a
// small string pool (so dictionaries actually dedupe).
func fuzzSetRows(rng *rand.Rand, n int) []Row {
	pool := codecValues()
	strs := []Value{String(""), String("red"), String("green"), String("blue"), String("x\x00y")}
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{
			pool[rng.Intn(len(pool))],
			strs[rng.Intn(len(strs))],
			pool[rng.Intn(len(pool))],
		}
	}
	return rows
}

// Every per-row ColSet accessor must agree with the Row-level operation on
// the reconstructed row: same hash, same canonical encoding, same
// equality, same cells — the contract the columnar join and fold build on.
func TestColSetMatchesRowSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5E7))
	rows := fuzzSetRows(rng, 500)
	s := GetColSet(3)
	defer s.Release()
	s.AppendRows(rows)
	if s.Len() != len(rows) || s.Width() != 3 {
		t.Fatalf("Len/Width = %d/%d, want %d/3", s.Len(), s.Width(), len(rows))
	}
	if s.Vec(1).Dict() == nil {
		t.Fatal("string column did not dictionary-encode")
	}
	idxSets := [][]int{{0}, {1}, {2}, {0, 1}, {1, 2}, {0, 1, 2}}
	const seed = 0x1234
	scratch := make(Row, 3)
	for i, r := range rows {
		for _, idx := range idxSets {
			if got, want := s.HashCols(i, idx, seed), r.HashCols(idx, seed); got != want {
				t.Fatalf("row %d idx %v: HashCols %x != Row.HashCols %x", i, idx, got, want)
			}
			if got, want := s.EncodeCols(i, idx, nil), r.EncodeCols(idx, nil); !bytes.Equal(got, want) {
				t.Fatalf("row %d idx %v: EncodeCols %x != Row.EncodeCols %x", i, idx, got, want)
			}
			if !s.KeyEqualRow(i, idx, r, idx) {
				t.Fatalf("row %d idx %v: KeyEqualRow false against own row", i, idx)
			}
			hasNull := false
			for _, c := range idx {
				hasNull = hasNull || r[c].IsNull()
			}
			if s.HasNullAt(i, idx) != hasNull {
				t.Fatalf("row %d idx %v: HasNullAt %v, want %v", i, idx, s.HasNullAt(i, idx), hasNull)
			}
		}
		for c := range r {
			if got := s.ValueAt(i, c); got.Kind() != r[c].Kind() || !got.KeyEqual(r[c]) {
				t.Fatalf("row %d col %d: ValueAt %v, want %v", i, c, got, r[c])
			}
			if s.IsNullAt(i, c) != r[c].IsNull() {
				t.Fatalf("row %d col %d: IsNullAt mismatch", i, c)
			}
		}
		s.CopyRowTo(i, scratch)
		if !scratch.KeyEqualCols([]int{0, 1, 2}, rows[i], []int{0, 1, 2}) {
			t.Fatalf("row %d: CopyRowTo %v, want %v", i, scratch, rows[i])
		}
	}
	// Cross-row equality (same set ⇒ same dict ⇒ code compare) must equal
	// Row equality over the encodings.
	for trial := 0; trial < 2000; trial++ {
		i, j := rng.Intn(len(rows)), rng.Intn(len(rows))
		idx := idxSets[rng.Intn(len(idxSets))]
		want := rows[i].KeyEqualCols(idx, rows[j], idx)
		if got := s.KeyEqualCols(i, idx, s, j, idx); got != want {
			t.Fatalf("rows %d,%d idx %v: KeyEqualCols %v, want %v", i, j, idx, got, want)
		}
	}
}

// AppendBatch must land the same cells whether the source batch is
// columnar (typed bulk gather, with or without a selection vector, dict
// or plain strings) or a row batch — and a second ColSet fed row-wise is
// the reference.
func TestColSetAppendBatchEqualsAppendRows(t *testing.T) {
	rng := rand.New(rand.NewSource(0xAB5))
	rows := fuzzSetRows(rng, 300)

	mkColumnar := func(sel []int32) *Batch {
		b := GetBatch()
		b.BeginColumnar(3)
		for _, r := range rows {
			for c, v := range r {
				b.Vec(c).AppendValue(v)
			}
		}
		if sel != nil {
			b.SetSel(sel)
		}
		return b
	}
	var sel []int32
	for i := range rows {
		if i%3 != 1 {
			sel = append(sel, int32(i))
		}
	}
	keptRows := make([]Row, 0, len(sel))
	for _, i := range sel {
		keptRows = append(keptRows, rows[i])
	}

	cases := []struct {
		name string
		feed func(s *ColSet)
		want []Row
	}{
		{"columnar-dense", func(s *ColSet) {
			b := mkColumnar(nil)
			s.AppendBatch(b)
			b.Release()
		}, rows},
		{"columnar-sel", func(s *ColSet) {
			b := mkColumnar(sel)
			s.AppendBatch(b)
			b.Release()
		}, keptRows},
		{"row-batch", func(s *ColSet) {
			b := GetBatch()
			b.AppendRows(rows)
			s.AppendBatch(b)
			b.Release()
		}, rows},
		{"two-batches", func(s *ColSet) {
			b1, b2 := mkColumnar(nil), mkColumnar(sel)
			s.AppendBatch(b1)
			s.AppendBatch(b2)
			b1.Release()
			b2.Release()
		}, append(append([]Row(nil), rows...), keptRows...)},
	}
	allIdx := []int{0, 1, 2}
	for _, tc := range cases {
		s := GetColSet(3)
		ref := GetColSet(3)
		tc.feed(s)
		ref.AppendRows(tc.want)
		if s.Len() != ref.Len() {
			t.Fatalf("%s: %d rows, want %d", tc.name, s.Len(), ref.Len())
		}
		for i := 0; i < ref.Len(); i++ {
			if got, want := s.EncodeCols(i, allIdx, nil), ref.EncodeCols(i, allIdx, nil); !bytes.Equal(got, want) {
				t.Fatalf("%s: row %d: %x != %x", tc.name, i, got, want)
			}
		}
		s.Release()
		ref.Release()
	}
}

// Released sets recycle their dictionaries; with poisoning on, a string
// read BEFORE Release must stay intact afterwards (decoded cells copy the
// header, never alias pooled dictionary state), while the recycled dict's
// storage is observably poisoned through a retained *Dict alias.
func TestColSetDictRecyclePoison(t *testing.T) {
	prev := SetPoisonRecycled(true)
	defer SetPoisonRecycled(prev)

	s := GetColSet(1)
	s.AppendRow(Row{String("alpha")})
	s.AppendRow(Row{String("beta")})
	s.AppendRow(Row{String("alpha")}) // interned: dict holds 2 entries
	d := s.Vec(0).Dict()
	if d == nil {
		t.Fatal("expected dictionary encoding")
	}
	if d.Len() != 2 {
		t.Fatalf("dict has %d entries, want 2 (interning)", d.Len())
	}
	v := s.ValueAt(0, 0)
	retained := d.strs // simulated retention bug: aliasing pooled storage
	s.Release()
	if got := v.AsString(); got != "alpha" {
		t.Fatalf("decoded cell changed after Release: %q", got)
	}
	// The retained slice aliases the recycled dictionary's backing array;
	// poisoning makes the use-after-release deterministic instead of
	// silently reading the next drain's strings.
	for i, got := range retained {
		if got != PoisonString {
			t.Fatalf("recycled dict slot %d = %q, want the poison sentinel", i, got)
		}
	}
}

// GetColSet must reuse pooled sets and dictionaries instead of
// allocating fresh ones each drain.
func TestColSetPoolRecycling(t *testing.T) {
	before := ReadPoolCounters()
	for i := 0; i < 64; i++ {
		s := GetColSet(2)
		s.AppendRow(Row{Int(int64(i)), String("s")})
		s.Release()
	}
	after := ReadPoolCounters()
	gets := after.SetGets - before.SetGets
	news := after.SetNews - before.SetNews
	if gets != 64 {
		t.Fatalf("SetGets delta %d, want 64", gets)
	}
	// sync.Pool may shed a few entries under GC pressure, but steady-state
	// reuse must dominate.
	if news > gets/2 {
		t.Fatalf("SetNews delta %d of %d gets — pool not recycling", news, gets)
	}
}
