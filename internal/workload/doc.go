// Package workload generates seeded adversarial scenarios and runs the
// full estimator suite across them — the reproduction's accuracy matrix.
//
// The paper's evaluation (Section 7) validates SVC on three fixed
// datasets; this package widens that to a generated grid: Zipf-skewed
// update keys, correlated delete/update pairs, burst-vs-drip churn,
// wide-vs-narrow group cardinalities, heavy-tailed outlier injection
// (stressing the Section 6 outlier indexes), and shifting query mixes.
// Every scenario runs under every engine config — both maintenance
// strategies × columnar on/off × serial/parallel — and the matrix runner
// measures CI coverage, CI width, relative error, and
// maintain/clean/query latency, emitting WORKLOADS.md and
// BENCH_matrix.json via `svcbench -run matrix`. Scenarios where measured
// coverage falls below nominal or SVC loses to the stale baseline are
// minimized and frozen as replayable fixtures.
//
// Generation is deterministic by construction: a Generator's op stream is
// a pure function of its Spec, independent of engine parallelism,
// columnar mode, and maintenance folding, so digests pin byte-identical
// replays. A Generator itself is not safe for concurrent use; run
// concurrent matrix cells on separate Generator instances (each owns its
// database), which is how the runner exercises concurrency-sensitive
// configs safely.
package workload
