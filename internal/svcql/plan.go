package svcql

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/sampleclean/svc/internal/algebra"
	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/estimator"
	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/view"
)

// SchemaSource resolves base-table schemas during planning. It abstracts
// over the two catalogs plans are built against: the live database
// (DBSchemas) and a pinned immutable version (VersionSchemas).
type SchemaSource func(name string) (relation.Schema, bool)

// DBSchemas resolves schemas from the live catalog.
func DBSchemas(d *db.Database) SchemaSource {
	return func(name string) (relation.Schema, bool) {
		t := d.Table(name)
		if t == nil {
			return relation.Schema{}, false
		}
		return t.Schema(), true
	}
}

// VersionSchemas resolves schemas from a pinned catalog version, so a plan
// built for one request matches exactly the relations the request's
// evaluation context binds.
func VersionSchemas(v *db.Version) SchemaSource {
	return func(name string) (relation.Schema, bool) {
		base := v.Base(name)
		if base == nil {
			return relation.Schema{}, false
		}
		return base.Schema(), true
	}
}

// PlanView compiles CREATE VIEW ... AS SELECT into a view definition over
// the database's base tables.
func PlanView(d *db.Database, src string) (view.Definition, error) {
	cv, sel, err := Parse(src)
	if err != nil {
		return view.Definition{}, err
	}
	if cv == nil {
		return view.Definition{}, fmt.Errorf("svcql: expected CREATE VIEW, got a bare SELECT (use PlanQuery for queries: %q)", firstLine(src))
	}
	_ = sel
	plan, err := planSelect(DBSchemas(d), &cv.Select)
	if err != nil {
		return view.Definition{}, err
	}
	return view.Definition{Name: cv.Name, Plan: plan}, nil
}

// AggQuery is a compiled aggregate query against a view: the estimator
// query plus an optional group-by.
type AggQuery struct {
	Query   estimator.Query
	GroupBy []string
}

// PlanQuery compiles SELECT agg(expr) FROM <view> [WHERE ...] [GROUP BY
// ...] into an estimator query. The FROM name must match the given view's
// name; the query's aggregate input must be a plain column of the view
// (the estimators aggregate view attributes).
func PlanQuery(v *view.View, src string) (AggQuery, error) {
	cv, sel, err := Parse(src)
	if err != nil {
		return AggQuery{}, err
	}
	if cv != nil {
		return AggQuery{}, fmt.Errorf("svcql: expected a SELECT, got CREATE VIEW")
	}
	if sel.From != v.Name() {
		return AggQuery{}, fmt.Errorf("svcql: query targets %q but the view is %q", sel.From, v.Name())
	}
	if len(sel.Joins) > 0 {
		return AggQuery{}, fmt.Errorf("svcql: queries against a view cannot join")
	}
	// Exactly one aggregate item; group-by columns may also be selected.
	var agg *SelectItem
	for i := range sel.Items {
		it := &sel.Items[i]
		if it.Agg != "" {
			if agg != nil {
				return AggQuery{}, fmt.Errorf("svcql: estimator queries take exactly one aggregate")
			}
			agg = it
			continue
		}
		// Non-aggregate item must be a selected group-by column.
		if it.Expr == nil || it.Expr.Kind != "ident" || !contains(sel.GroupBy, it.Expr.Text) {
			return AggQuery{}, fmt.Errorf("svcql: non-aggregate select item must be a GROUP BY column")
		}
	}
	if agg == nil {
		return AggQuery{}, fmt.Errorf("svcql: estimator queries need an aggregate (COUNT/SUM/AVG/MIN/MAX/MEDIAN)")
	}
	var pred expr.Expr
	if sel.Where != nil {
		pred, err = buildExpr(sel.Where)
		if err != nil {
			return AggQuery{}, err
		}
		if _, err := pred.Bind(v.Schema()); err != nil {
			return AggQuery{}, fmt.Errorf("svcql: %w", err)
		}
	}
	attr := ""
	if agg.Expr != nil {
		if agg.Expr.Kind != "ident" {
			return AggQuery{}, fmt.Errorf("svcql: aggregate input must be a view column, got an expression")
		}
		attr = agg.Expr.Text
		if !v.Schema().HasCol(attr) {
			return AggQuery{}, fmt.Errorf("svcql: view %s has no column %q", v.Name(), attr)
		}
	}
	var q estimator.Query
	switch agg.Agg {
	case "COUNT":
		q = estimator.Count(pred)
	case "SUM":
		q = estimator.Sum(attr, pred)
	case "AVG":
		q = estimator.Avg(attr, pred)
	case "MIN":
		q = estimator.Min(attr, pred)
	case "MAX":
		q = estimator.Max(attr, pred)
	case "MEDIAN":
		q = estimator.Median(attr, pred)
	default:
		return AggQuery{}, fmt.Errorf("svcql: unsupported aggregate %s", agg.Agg)
	}
	for _, g := range sel.GroupBy {
		if !v.Schema().HasCol(g) {
			return AggQuery{}, fmt.Errorf("svcql: view %s has no column %q", v.Name(), g)
		}
	}
	return AggQuery{Query: q, GroupBy: sel.GroupBy}, nil
}

// planSelect compiles a SELECT block into an algebra plan over base
// tables.
func planSelect(schemas SchemaSource, sel *SelectStmt) (algebra.Node, error) {
	ts, ok := schemas(sel.From)
	if !ok {
		return nil, fmt.Errorf("svcql: unknown table %q", sel.From)
	}
	var plan algebra.Node = algebra.Scan(sel.From, ts)
	for _, j := range sel.Joins {
		js, ok := schemas(j.Table)
		if !ok {
			return nil, fmt.Errorf("svcql: unknown table %q", j.Table)
		}
		right := algebra.Scan(j.Table, js)
		// Orient the equality: Left must name a column of the current
		// plan, Right a column of the joined table.
		lcol, rcol := j.Left, j.Right
		if !plan.Schema().HasCol(lcol) || !js.HasCol(rcol) {
			lcol, rcol = j.Right, j.Left
		}
		if !plan.Schema().HasCol(lcol) || !js.HasCol(rcol) {
			return nil, fmt.Errorf("svcql: join condition %s = %s matches neither side", j.Left, j.Right)
		}
		// Merge when the two sides share the column name (USING
		// semantics), which also gives FK joins their natural key.
		spec := algebra.JoinSpec{
			Type:  algebra.Inner,
			On:    []algebra.EqPair{{Left: lcol, Right: rcol}},
			Merge: lcol == rcol,
		}
		joined, err := algebra.Join(plan, right, spec)
		if err != nil {
			return nil, fmt.Errorf("svcql: %w", err)
		}
		plan = joined
	}
	if sel.Where != nil {
		pred, err := buildExpr(sel.Where)
		if err != nil {
			return nil, err
		}
		filtered, err := algebra.Select(plan, pred)
		if err != nil {
			return nil, fmt.Errorf("svcql: %w", err)
		}
		plan = filtered
	}

	hasAgg := false
	for _, it := range sel.Items {
		if it.Agg != "" {
			hasAgg = true
		}
	}
	if !hasAgg {
		if len(sel.GroupBy) > 0 {
			return nil, fmt.Errorf("svcql: GROUP BY without aggregates")
		}
		// Pure projection view.
		var outs []algebra.Output
		for i, it := range sel.Items {
			e, err := buildExpr(it.Expr)
			if err != nil {
				return nil, err
			}
			name := it.As
			if name == "" {
				if it.Expr.Kind == "ident" {
					name = it.Expr.Text
				} else {
					name = fmt.Sprintf("col%d", i+1)
				}
			}
			outs = append(outs, algebra.Out(name, e))
		}
		proj, err := algebra.Project(plan, outs)
		if err != nil {
			return nil, fmt.Errorf("svcql: %w (the view's projection must keep the derived primary key)", err)
		}
		return proj, nil
	}

	// Aggregate view: group-by columns must be selected as plain idents
	// (or be implied by GROUP BY); the remaining items are aggregates.
	var aggs []algebra.AggSpec
	for i, it := range sel.Items {
		if it.Agg == "" {
			if it.Expr == nil || it.Expr.Kind != "ident" || !contains(sel.GroupBy, it.Expr.Text) {
				return nil, fmt.Errorf("svcql: select item %d must be a GROUP BY column or an aggregate", i+1)
			}
			continue
		}
		name := it.As
		if name == "" {
			name = strings.ToLower(it.Agg) + strconv.Itoa(i+1)
		}
		switch it.Agg {
		case "COUNT":
			aggs = append(aggs, algebra.CountAs(name))
		default:
			e, err := buildExpr(it.Expr)
			if err != nil {
				return nil, err
			}
			switch it.Agg {
			case "SUM":
				aggs = append(aggs, algebra.SumAs(e, name))
			case "AVG":
				aggs = append(aggs, algebra.AvgAs(e, name))
			case "MIN":
				aggs = append(aggs, algebra.MinAs(e, name))
			case "MAX":
				aggs = append(aggs, algebra.MaxAs(e, name))
			default:
				return nil, fmt.Errorf("svcql: aggregate %s is not supported in views", it.Agg)
			}
		}
	}
	if len(sel.GroupBy) == 0 {
		return nil, fmt.Errorf("svcql: aggregate views need GROUP BY (grand totals have no primary key; query them through the estimators instead)")
	}
	g, err := algebra.GroupBy(plan, sel.GroupBy, aggs...)
	if err != nil {
		return nil, fmt.Errorf("svcql: %w", err)
	}
	return g, nil
}

// buildExpr converts a parsed expression into the engine's expression
// language.
func buildExpr(n *ExprNode) (expr.Expr, error) {
	if n == nil {
		return nil, fmt.Errorf("svcql: empty expression")
	}
	switch n.Kind {
	case "ident":
		return expr.Col(n.Text), nil
	case "number":
		if strings.ContainsRune(n.Text, '.') {
			f, err := strconv.ParseFloat(n.Text, 64)
			if err != nil {
				return nil, err
			}
			return expr.FloatLit(f), nil
		}
		i, err := strconv.ParseInt(n.Text, 10, 64)
		if err != nil {
			return nil, err
		}
		return expr.IntLit(i), nil
	case "string":
		return expr.StringLit(n.Text), nil
	case "null":
		return expr.Lit(relation.Null()), nil
	case "unary":
		l, err := buildExpr(n.L)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "NOT":
			return expr.Not(l), nil
		case "IS NULL":
			return expr.IsNull(l), nil
		}
		return nil, fmt.Errorf("svcql: unknown unary op %q", n.Op)
	case "binary":
		l, err := buildExpr(n.L)
		if err != nil {
			return nil, err
		}
		r, err := buildExpr(n.R)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "AND":
			return expr.And(l, r), nil
		case "OR":
			return expr.Or(l, r), nil
		case "=":
			return expr.Eq(l, r), nil
		case "<>":
			return expr.Ne(l, r), nil
		case "<":
			return expr.Lt(l, r), nil
		case "<=":
			return expr.Le(l, r), nil
		case ">":
			return expr.Gt(l, r), nil
		case ">=":
			return expr.Ge(l, r), nil
		case "+":
			return expr.Add(l, r), nil
		case "-":
			return expr.Sub(l, r), nil
		case "*":
			return expr.Mul(l, r), nil
		case "/":
			return expr.Div(l, r), nil
		}
		return nil, fmt.Errorf("svcql: unknown operator %q", n.Op)
	}
	return nil, fmt.Errorf("svcql: unknown expression kind %q", n.Kind)
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
