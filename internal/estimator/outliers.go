package estimator

import (
	"fmt"
	"math"

	"github.com/sampleclean/svc/internal/clean"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/stats"
)

// OutlierSet is the materialized outlier partition O ⊆ S′ propagated up
// from a base-relation outlier index (paper Section 6), together with the
// corresponding stale rows of the same keys (for corrections).
type OutlierSet struct {
	// Fresh holds the up-to-date outlier rows (deterministic, sampling
	// ratio 1).
	Fresh *relation.Relation
	// Stale holds the stale view's rows for outlier keys (keys absent
	// from the stale view are simply missing here). It may contain keys
	// absent from Fresh: retired outliers whose rows left the up-to-date
	// view entirely — their removal is handled exactly, like every other
	// outlier correction.
	Stale *relation.Relation
}

// Len returns the number of distinct outlier keys (fresh rows plus
// retired stale-only rows).
func (o *OutlierSet) Len() int {
	if o == nil || o.Fresh == nil {
		return 0
	}
	n := o.Fresh.Len()
	if o.Stale != nil {
		keyIdx := o.Stale.Schema().Key()
		for _, row := range o.Stale.Rows() {
			if _, ok := o.Fresh.GetByEncodedKey(row.KeyOf(keyIdx)); !ok {
				n++
			}
		}
	}
	return n
}

// hasKey reports whether an encoded view key belongs to the outlier
// partition — present in the fresh rows or in the (possibly retired)
// stale rows.
func (o *OutlierSet) hasKey(k string) bool {
	if _, ok := o.Fresh.GetByEncodedKey(k); ok {
		return true
	}
	if o.Stale != nil {
		if _, ok := o.Stale.GetByEncodedKey(k); ok {
			return true
		}
	}
	return false
}

// splitSamples removes outlier-indexed keys from the sample pair: if a row
// is contained in both the sample and the outlier index, the outlier index
// takes precedence so the row is not double counted (Section 6.2).
func splitSamples(s *clean.Samples, o *OutlierSet) *clean.Samples {
	if o.Len() == 0 {
		return s
	}
	keyIdx := s.Fresh.Schema().Key()
	inOutliers := func(row relation.Row) bool {
		return o.hasKey(row.KeyOf(keyIdx))
	}
	fresh := relation.New(s.Fresh.Schema())
	for _, row := range s.Fresh.Rows() {
		if !inOutliers(row) {
			fresh.MustInsert(row)
		}
	}
	stale := relation.New(s.Stale.Schema())
	for _, row := range s.Stale.Rows() {
		if !inOutliers(row) {
			stale.MustInsert(row)
		}
	}
	return &clean.Samples{Fresh: fresh, Stale: stale, Ratio: s.Ratio}
}

// AQPWithOutliers merges the sampled estimate over S′∖O with the exact
// answer over the deterministic outlier set O (paper Section 6.3). The
// merge is exact for sums and counts (they are additive) and a
// sum/count-ratio combination for avg.
func AQPWithOutliers(s *clean.Samples, o *OutlierSet, q Query, confidence float64) (Estimate, error) {
	if o.Len() == 0 {
		return AQP(s, q, confidence)
	}
	rest := splitSamples(s, o)
	switch q.Agg {
	case SumQ, CountQ:
		reg, err := AQP(rest, q, confidence)
		if err != nil {
			return Estimate{}, err
		}
		out, err := RunExact(o.Fresh, q)
		if err != nil {
			return Estimate{}, err
		}
		// cout is deterministic: zero variance, so the interval shifts.
		return Estimate{
			Value: reg.Value + out, Lo: reg.Lo + out, Hi: reg.Hi + out,
			Confidence: confidence, Method: "svc+aqp+outlier", K: reg.K + o.Len(),
		}, nil
	case AvgQ:
		sumEst, err := AQPWithOutliers(s, o, Query{Agg: SumQ, Attr: q.Attr, Pred: q.Pred}, confidence)
		if err != nil {
			return Estimate{}, err
		}
		cntEst, err := AQPWithOutliers(s, o, Query{Agg: CountQ, Pred: q.Pred}, confidence)
		if err != nil {
			return Estimate{}, err
		}
		if cntEst.Value == 0 {
			return Estimate{}, fmt.Errorf("estimator: zero estimated count for avg")
		}
		v := sumEst.Value / cntEst.Value
		half := ratioHalfWidth(v, sumEst, cntEst)
		return Estimate{
			Value: v, Lo: v - half, Hi: v + half,
			Confidence: confidence, Method: "svc+aqp+outlier", K: sumEst.K,
		}, nil
	default:
		// Median/percentile/min/max do not decompose additively; fall
		// back to the plain sampled estimate over the union of rows with
		// outliers included as certain members (sampling-weight-free
		// quantiles are dominated by the bulk anyway).
		return AQP(s, q, confidence)
	}
}

// CorrWithOutliers merges a sampled correction over S′∖O with the exact
// correction over O: v = c_reg + c_out, where c_out = q_O(fresh) −
// q_O(stale) is deterministic (Section 6.3 — since cout has zero
// variance, the bounds of the regular part apply unchanged, shifted).
func CorrWithOutliers(staleView *relation.Relation, s *clean.Samples, o *OutlierSet, q Query, confidence float64) (Estimate, error) {
	if o.Len() == 0 {
		return Corr(staleView, s, q, confidence)
	}
	if q.Agg != SumQ && q.Agg != CountQ && q.Agg != AvgQ {
		return Corr(staleView, s, q, confidence)
	}
	if q.Agg == AvgQ {
		sumEst, err := CorrWithOutliers(staleView, s, o, Query{Agg: SumQ, Attr: q.Attr, Pred: q.Pred}, confidence)
		if err != nil {
			return Estimate{}, err
		}
		cntEst, err := CorrWithOutliers(staleView, s, o, Query{Agg: CountQ, Pred: q.Pred}, confidence)
		if err != nil {
			return Estimate{}, err
		}
		if cntEst.Value == 0 {
			return Estimate{}, fmt.Errorf("estimator: zero estimated count for avg")
		}
		v := sumEst.Value / cntEst.Value
		half := ratioHalfWidth(v, sumEst, cntEst)
		return Estimate{
			Value: v, Lo: v - half, Hi: v + half,
			Confidence: confidence, Method: "svc+corr+outlier", K: sumEst.K,
		}, nil
	}

	rest := splitSamples(s, o)
	// Regular part: corrected estimate over the stale view *excluding*
	// outlier-key rows (retired keys too — their stale rows are removed
	// here exactly, and contribute nothing to the fresh outlier part).
	keyIdx := staleView.Schema().Key()
	staleRest := relation.New(staleView.Schema())
	for _, row := range staleView.Rows() {
		if o.hasKey(row.KeyOf(keyIdx)) {
			continue
		}
		staleRest.MustInsert(row)
	}
	reg, err := Corr(staleRest, rest, q, confidence)
	if err != nil {
		return Estimate{}, err
	}
	// Outlier part: exact.
	outFresh, err := RunExact(o.Fresh, q)
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{
		Value: reg.Value + outFresh, Lo: reg.Lo + outFresh, Hi: reg.Hi + outFresh,
		Confidence: confidence, Method: "svc+corr+outlier", K: reg.K + o.Len(),
	}, nil
}

// ratioHalfWidth propagates CI half-widths through v = sum/count by
// combining both relative uncertainties in quadrature. With an outlier
// index the sum's variance collapses (the tail is exact), so the count's
// sampling noise — negligible without the index — becomes the dominant
// term; dropping it undercovers badly on heavy-tailed data. Sum and count
// estimates are positively correlated, so quadrature is conservative.
func ratioHalfWidth(v float64, sumEst, cntEst Estimate) float64 {
	var rel2 float64
	if sumEst.Value != 0 {
		r := sumEst.HalfWidth() / math.Abs(sumEst.Value)
		rel2 += r * r
	}
	if cntEst.Value != 0 {
		r := cntEst.HalfWidth() / math.Abs(cntEst.Value)
		rel2 += r * r
	}
	return math.Abs(v) * math.Sqrt(rel2)
}

// VarianceReduction reports the fraction of the attribute's sample
// variance removed by excluding the outlier rows — a diagnostic for how
// much an outlier index helps a given query (Section 6 discussion: the
// reduction is largest for long-tailed data).
func VarianceReduction(s *clean.Samples, o *OutlierSet, attr string) (float64, error) {
	idx := s.Fresh.Schema().ColIndex(attr)
	if idx < 0 {
		return 0, fmt.Errorf("estimator: attribute %q not in sample", attr)
	}
	all := make([]float64, 0, s.Fresh.Len())
	for _, row := range s.Fresh.Rows() {
		if !row[idx].IsNull() {
			all = append(all, row[idx].AsFloat())
		}
	}
	rest := splitSamples(s, o)
	kept := make([]float64, 0, rest.Fresh.Len())
	for _, row := range rest.Fresh.Rows() {
		if !row[idx].IsNull() {
			kept = append(kept, row[idx].AsFloat())
		}
	}
	va := stats.Variance(all)
	if va == 0 {
		return 0, nil
	}
	return 1 - stats.Variance(kept)/va, nil
}
