package algebra

import (
	"sort"

	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
)

// Parallel columnar aggregation. aggStream (aggregate.go) folds a fused
// chain's columnar batches serially; this file extends the columnar path
// to parallel evaluation and to columnar pipeline breakers (joins, set
// operators): the input drains into ColSets — per-worker morsels for a
// fused chain, one set for a breaker-rooted stream — and a partitioned
// fold groups straight off the column vectors. The gate is the EFFECTIVE
// worker count (Context.workers over the actual input size), not the
// Parallelism knob: a parallel pin over a small input stays on the serial
// stream instead of kicking the whole aggregation back to the row path.

// aggPathHook, when non-nil, observes which aggregation path aggDrain
// chose: "rows" (partitioned row fold), "stream" (serial columnar
// stream), or "fold" (parallel columnar fold). Test instrumentation only.
var aggPathHook func(path string)

func notePath(p string) {
	if aggPathHook != nil {
		aggPathHook(p)
	}
}

// columnarYields reports whether n's iterator produces columnar batches
// under ctx — the gate for the columnar aggregation paths. It extends
// columnarChain through pipeline breakers: columnar joins, set operators
// over columnar inputs, and fused chain operators stacked above either.
func columnarYields(n Node, ctx *Context) bool {
	if ctx.NoColumnar {
		return false
	}
	switch t := n.(type) {
	case *ScanNode:
		// Plain scans share row headers for free; columnarizing them would
		// only add copies (same rule as columnarChain).
		return !t.plain() && (t.bound == nil || expr.CanVec(t.bound))
	case *SelectNode:
		return expr.CanVec(t.bound) && columnarYields(t.child, ctx)
	case *ProjectNode:
		if t.explicit && t.schema.HasKey() {
			return false // asserted-key check runs on rows
		}
		for _, e := range t.bound {
			if !expr.CanVec(e) {
				return false
			}
		}
		return columnarYields(t.child, ctx)
	case *AliasNode:
		return columnarYields(t.child, ctx)
	case *HashFilterNode:
		return columnarYields(t.child, ctx)
	case *JoinNode:
		return t.columnarJoinOK(ctx)
	case *SetOpNode:
		if t.kind == opUnion {
			if t.schema.HasKey() {
				return false // keyed union records/filters row headers
			}
			return columnarYields(t.l, ctx) && columnarYields(t.r, ctx)
		}
		// Difference/Intersect stream (and filter) the left side.
		return columnarYields(t.l, ctx)
	case *CachedNode:
		// Serving the cache emits dense columnar batches; pass-through
		// yields whatever the child yields.
		if ctx.Subplans.usable(ctx) {
			return true
		}
		return columnarYields(t.child, ctx)
	default:
		return false
	}
}

// aggColumnar evaluates the aggregation over a columnar-yielding child.
// Fused chains drain morsel-parallel into per-worker ColSets when the
// effective worker count warrants it (serial chains keep the streaming
// fold, which never materializes the input at all); breaker-rooted
// streams drain into one set. Either way the fold partitions groups by
// key hash across workers, so the output is bit-identical to serial
// evaluation (a group's rows fold in global stream order on one worker).
func (a *AggregateNode) aggColumnar(ctx *Context) ([]relation.Row, error) {
	if scan := chainScan(a.child); scan != nil {
		rel, err := ctx.Relation(scan.name)
		if err != nil || !rel.Schema().Compatible(scan.schema) || scan.needsRebuild(rel) {
			// Let the serial stream surface errors / rebuild once.
			notePath("stream")
			return a.aggStream(ctx)
		}
		w := ctx.workers(rel.Len())
		if w <= 1 {
			// Effective-workers gate: a parallel pin over a small input
			// stays on the serial columnar stream.
			notePath("stream")
			return a.aggStream(ctx)
		}
		sets := make([]*relation.ColSet, w)
		errs := make([]error, w)
		touched := make([]int64, w)
		width := a.child.Schema().NumCols()
		runWorkers(w, func(p int) {
			lo, hi := chunkRange(p, w, rel.Len())
			wctx := ctx.workerCtx()
			sets[p], errs[p] = drainColSetIter(wctx, iterRange(a.child, lo, hi), width)
			touched[p] = wctx.RowsTouched
		})
		for _, tch := range touched {
			ctx.RowsTouched += tch
		}
		defer releaseSets(sets)
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		notePath("fold")
		return a.foldColSets(ctx, sets, w)
	}
	// Breaker-rooted columnar stream (join, set operator, or a chain over
	// one): drain serially into a single set; the fold still partitions.
	set, err := drainColSet(ctx, a.child)
	if err != nil {
		return nil, err
	}
	sets := []*relation.ColSet{set}
	defer releaseSets(sets)
	notePath("fold")
	return a.foldColSets(ctx, sets, ctx.workers(set.Len()))
}

func releaseSets(sets []*relation.ColSet) {
	for _, s := range sets {
		if s != nil {
			s.Release()
		}
	}
}

// drainColSetIter drains an opened-by-us iterator into a pooled ColSet of
// the given width.
func drainColSetIter(ctx *Context, it Iterator, width int) (*relation.ColSet, error) {
	set := relation.GetColSet(width)
	if err := it.Open(ctx); err != nil {
		set.Release()
		return nil, err
	}
	defer it.Close()
	for {
		b, err := it.Next()
		if err != nil {
			set.Release()
			return nil, err
		}
		if b == nil {
			return set, nil
		}
		set.AppendBatch(b)
		b.Release()
	}
}

// foldColSets groups the concatenation of sets (in slice order — the
// global stream order) and folds the aggregates, partitioned across w
// workers by group-key hash. Group cells are compared via the sets'
// vectors (dictionary columns of one set compare codes) and aggregate
// inputs evaluate vectorized once per set; no input row is materialized.
// Output groups emerge in first-occurrence order — identical to aggRows
// and aggStream.
func (a *AggregateNode) foldColSets(ctx *Context, sets []*relation.ColSet, w int) ([]relation.Row, error) {
	na := len(a.aggs)
	gW := len(a.gIdx)
	total := 0
	offs := make([]int64, len(sets))
	for si, s := range sets {
		offs[si] = int64(total)
		total += s.Len()
	}
	ctx.RowsTouched += int64(total)

	// Per-row group hashes (keyHash semantics: never 0) and vectorized
	// aggregate inputs, one pass per set.
	hashes := make([][]uint64, len(sets))
	ins := make([][]*relation.ColVec, len(sets))
	defer func() {
		for _, vs := range ins {
			for _, v := range vs {
				if v != nil {
					relation.PutVec(v)
				}
			}
		}
	}()
	for si, s := range sets {
		hs := make([]uint64, s.Len())
		eachChunk(w, s.Len(), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				h := s.HashCols(i, a.gIdx, tableSeed)
				if h == 0 {
					h = 1
				}
				hs[i] = h
			}
		})
		hashes[si] = hs
		vs := make([]*relation.ColVec, na)
		for ai, e := range a.bound {
			if e != nil {
				v := relation.GetVec()
				expr.EvalVec(e, s, nil, v)
				vs[ai] = v
			}
		}
		ins[si] = vs
	}

	// Partitioned fold: worker p owns the groups whose hash ≡ p (mod w),
	// walking the sets in global order so each group accumulates exactly
	// as in serial evaluation.
	type repRef struct{ set, row int32 }
	reps := make([][]repRef, w)
	accs := make([][]accumulator, w)
	runWorkers(w, func(p int) {
		t := newHashIdx(64, nil)
		var rp []repRef
		var ac []accumulator
		var curSet, curRow int
		sameKey := func(head int32) bool {
			r := rp[head]
			return sets[r.set].KeyEqualCols(int(r.row), a.gIdx, sets[curSet], curRow, a.gIdx)
		}
		pw := uint64(w)
		for si, s := range sets {
			hs := hashes[si]
			vs := ins[si]
			n := s.Len()
			for i := 0; i < n; i++ {
				h := hs[i]
				if w > 1 && h%pw != uint64(p) {
					continue
				}
				curSet, curRow = si, i
				g := t.first(h, sameKey)
				if g < 0 {
					g = int32(len(rp))
					rp = append(rp, repRef{set: int32(si), row: int32(i)})
					for k := 0; k < na; k++ {
						ac = append(ac, accumulator{})
					}
					t.addGrow(h, g, sameKey)
				}
				base := int(g) * na
				for ai := range a.aggs {
					var v relation.Value
					if vs[ai] != nil {
						v = vs[ai].Value(i)
					}
					ac[base+ai].add(a.aggs[ai].Func, v)
				}
			}
		}
		reps[p], accs[p] = rp, ac
	})

	// Merge partitions back into first-occurrence order (same scheme as
	// aggRows, with (set, row) refs mapped to global stream positions).
	type gref struct {
		part  int
		group int32
		first int64
	}
	var all []gref
	for p := range reps {
		for g, r := range reps[p] {
			all = append(all, gref{part: p, group: int32(g), first: offs[r.set] + int64(r.row)})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].first < all[j].first })

	rows := make([]relation.Row, 0, len(all)+1)
	for _, gr := range all {
		r := reps[gr.part][gr.group]
		out := make(relation.Row, gW+na)
		for i, gi := range a.gIdx {
			out[i] = sets[r.set].ValueAt(int(r.row), gi)
		}
		base := int(gr.group) * na
		for i, spec := range a.aggs {
			out[gW+i] = accs[gr.part][base+i].result(spec.Func)
		}
		rows = append(rows, out)
	}
	// A grand aggregate (no group-by) over empty input yields one row of
	// count 0 / NULL aggregates, matching SQL (and aggRows/aggStream).
	if len(a.groupBy) == 0 && len(rows) == 0 {
		out := make(relation.Row, na)
		for i, spec := range a.aggs {
			var acc accumulator
			out[i] = acc.result(spec.Func)
		}
		rows = append(rows, out)
	}
	return rows, nil
}
