// Heavy-tail stress for the outlier index, driven by the adversarial
// workload generator (external test package: workload itself imports
// outlier for the matrix runner).
package outlier_test

import (
	"math"
	"testing"

	"github.com/sampleclean/svc/internal/algebra"
	"github.com/sampleclean/svc/internal/clean"
	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/estimator"
	"github.com/sampleclean/svc/internal/hashing"
	"github.com/sampleclean/svc/internal/outlier"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/view"
	"github.com/sampleclean/svc/internal/workload"
)

// TestHeavyTailScenarioIndexAbsorbsTail runs the workload matrix's
// heavy-tail scenario and asserts the Section 6 claims the scenario exists
// to stress: the outlier index soaks up most of the sample variance, and
// the with-outlier CI is tighter than the plain sampled CI for the sum
// query that the tail dominates.
func TestHeavyTailScenarioIndexAbsorbsTail(t *testing.T) {
	spec, ok := workload.ScenarioByName("heavy-tail")
	if !ok {
		t.Fatal("heavy-tail scenario missing")
	}
	g, err := workload.NewGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	d := g.DB()
	v, err := view.Materialize(d, spec.Definition())
	if err != nil {
		t.Fatal(err)
	}
	m, err := view.NewMaintainerWithStrategy(v, view.ChangeTable)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.StageRound(0); err != nil {
		t.Fatal(err)
	}

	thr, err := outlier.TopKThreshold(d.Table("Fact"), "val", spec.OutlierK)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := outlier.NewIndex("Fact", "val", d.Table("Fact").Schema(), thr, spec.OutlierK)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.BuildFromTable(d.Table("Fact")); err != nil {
		t.Fatal(err)
	}
	mz, err := outlier.NewMaterializer(v, ix)
	if err != nil {
		t.Fatal(err)
	}
	oset, err := mz.Materialize(d)
	if err != nil {
		t.Fatal(err)
	}
	if oset.Len() == 0 {
		t.Fatal("heavy-tail scenario produced an empty outlier partition")
	}

	snap := d.Snapshot()
	if err := snap.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	tv, err := view.Materialize(snap, spec.Definition())
	if err != nil {
		t.Fatal(err)
	}
	truthRel := tv.Data()

	q := estimator.Query{Agg: estimator.SumQ, Attr: spec.AggAttr()}
	truth, err := estimator.RunExact(truthRel, q)
	if err != nil {
		t.Fatal(err)
	}

	var widthPlain, widthOut float64
	var coveredOut int
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		cl, err := clean.New(m, spec.SampleRatio, hashing.Salted{Salt: uint64(trial) + 1})
		if err != nil {
			t.Fatal(err)
		}
		if !outlier.Eligible(cl, ix) {
			t.Fatal("heavy-tail cleaner plan should make the index eligible")
		}
		samples, err := cl.Clean(d)
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			vr, err := estimator.VarianceReduction(samples, oset, "val")
			if err != nil {
				t.Fatal(err)
			}
			if vr < 0.5 {
				t.Fatalf("outlier index removed only %.0f%% of sample variance, want ≥50%% on heavy-tail data", vr*100)
			}
		}
		plain, err := estimator.Corr(v.Data(), samples, q, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		withOut, err := estimator.CorrWithOutliers(v.Data(), samples, oset, q, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		widthPlain += plain.Hi - plain.Lo
		widthOut += withOut.Hi - withOut.Lo
		if withOut.Covers(truth) {
			coveredOut++
		}
	}
	if widthOut >= widthPlain {
		t.Fatalf("with-outlier CI width %.3g not tighter than plain %.3g", widthOut/trials, widthPlain/trials)
	}
	if coveredOut < trials*7/10 {
		t.Fatalf("with-outlier CI covered truth only %d/%d trials", coveredOut, trials)
	}
}

// TestRetiredOutlierExactCorrection pins the fillRetired semantics: an
// indexed-grade row REMOVED by a staged deletion is carried in
// OutlierSet.Stale (without a Fresh counterpart), a shrink-update of an
// indexed row stays on the sampled path, and at sampling ratio 1 the
// with-outlier corrected estimate is exact.
func TestRetiredOutlierExactCorrection(t *testing.T) {
	schema := relation.NewSchema([]relation.Column{
		{Name: "id", Type: relation.KindInt},
		{Name: "val", Type: relation.KindFloat},
	}, "id")
	d := db.New()
	tb := d.MustCreate("Fact", schema)
	for i := 0; i < 40; i++ {
		val := 10.0
		switch i {
		case 0, 1, 2:
			val = 10_000 // indexed-grade rows
		}
		tb.MustInsert(relation.Row{relation.Int(int64(i)), relation.Float(val)})
	}
	def := view.Definition{Name: "flat", Plan: algebra.MustProjectKeyed(
		algebra.Scan("Fact", schema), algebra.OutCols("id", "val"), "id")}
	v, err := view.Materialize(d, def)
	if err != nil {
		t.Fatal(err)
	}
	m, err := view.NewMaintainerWithStrategy(v, view.ChangeTable)
	if err != nil {
		t.Fatal(err)
	}

	// Row 0: retired — deleted outright. Row 1: shrink-updated to a normal
	// value (old huge row goes to ∇, new row to Δ). Row 2: untouched.
	if err := tb.StageDelete(relation.Int(0)); err != nil {
		t.Fatal(err)
	}
	if err := tb.StageUpdate(relation.Row{relation.Int(1), relation.Float(12)}); err != nil {
		t.Fatal(err)
	}

	// Built AFTER staging: the index reflects up-to-date contents, so the
	// deleted and shrink-updated rows are not in it — exactly the state
	// fillRetired exists to compensate for.
	ix, err := outlier.NewIndex("Fact", "val", schema, 1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.BuildFromTable(tb); err != nil {
		t.Fatal(err)
	}

	mz, err := outlier.NewMaterializer(v, ix)
	if err != nil {
		t.Fatal(err)
	}
	oset, err := mz.Materialize(d)
	if err != nil {
		t.Fatal(err)
	}

	if _, ok := oset.Fresh.GetByEncodedKey(relation.Row{relation.Int(0)}.KeyOf([]int{0})); ok {
		t.Fatal("deleted outlier key must not appear in Fresh")
	}
	if _, ok := oset.Stale.GetByEncodedKey(relation.Row{relation.Int(0)}.KeyOf([]int{0})); !ok {
		t.Fatal("retired outlier's stale row missing from OutlierSet.Stale — fillRetired broken")
	}
	if _, ok := oset.Stale.GetByEncodedKey(relation.Row{relation.Int(1)}.KeyOf([]int{0})); ok {
		t.Fatal("shrink-updated key was re-inserted by Δ and must stay on the sampled path")
	}
	if _, ok := oset.Fresh.GetByEncodedKey(relation.Row{relation.Int(2)}.KeyOf([]int{0})); !ok {
		t.Fatal("untouched outlier missing from Fresh")
	}

	// Ratio-1 sample: the sampled remainder has zero sampling error, so
	// with-outlier corrected answers must equal the recompute truth.
	snap := d.Snapshot()
	if err := snap.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	tv, err := view.Materialize(snap, def)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := clean.New(m, 1.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := cl.Clean(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []estimator.Query{
		{Agg: estimator.SumQ, Attr: "val"},
		{Agg: estimator.CountQ},
		{Agg: estimator.AvgQ, Attr: "val"},
	} {
		truth, err := estimator.RunExact(tv.Data(), q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := estimator.CorrWithOutliers(v.Data(), samples, oset, q, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		tol := 1e-9 * math.Max(1, math.Abs(truth))
		if math.Abs(got.Value-truth) > tol {
			t.Fatalf("%v: ratio-1 with-outlier estimate %.9g != truth %.9g (retired correction wrong)", q.Agg, got.Value, truth)
		}
	}
}
