package relation

import (
	"math"

	"github.com/sampleclean/svc/internal/hashing"
)

// This file is the zero-allocation key pipeline. The engine's hot
// operators (hash join, group-by, set operators, the PK/secondary index,
// and the hash sampler) identify rows by the canonical injective encoding
// of their key columns (Value.appendEncoded). Materializing that encoding
// as a Go string per row makes allocation, not the algorithms, the
// dominant cost. Three facilities remove it:
//
//   - KeyBuf: a reusable caller-owned buffer so encodings are computed
//     in place and looked up as []byte (map[string] lookups with a
//     string([]byte) conversion do not allocate);
//   - Row.HashCols: a seeded 64-bit hash computed directly from the typed
//     payloads, byte-for-byte deterministic, without materializing the
//     encoding at all;
//   - Row.KeyEqualCols / Value.KeyEqual: encoding equality computed
//     directly on values, used to verify hash-table candidates so that
//     64-bit collisions can never merge two distinct keys.
//
// The invariants tying them together (checked by key_test.go):
//
//	KeyOf(a) == KeyOf(b)  ⇔  KeyEqual on every key column
//	KeyOf(a) == KeyOf(b)  ⇒  HashCols(a, s) == HashCols(b, s) for every seed s

// KeyBuf is a reusable buffer for composite-key encodings. The zero value
// is ready to use. A KeyBuf must not be shared between goroutines.
type KeyBuf struct {
	buf []byte
}

// Row encodes the given key columns of r into the buffer, replacing its
// previous contents, and returns the encoded bytes. The returned slice is
// only valid until the next call on this KeyBuf.
func (b *KeyBuf) Row(r Row, keyIdx []int) []byte {
	b.buf = r.EncodeCols(keyIdx, b.buf[:0])
	return b.buf
}

// Bytes returns the current encoding.
func (b *KeyBuf) Bytes() []byte { return b.buf }

// String materializes the current encoding as a string (one allocation).
func (b *KeyBuf) String() string { return string(b.buf) }

// HashCols returns a seeded 64-bit hash of the canonical encoding of the
// given key columns, computed directly from the typed values without
// materializing the encoding. Rows with equal encodings (Row.KeyOf) hash
// equally under every seed; the converse does not hold, so consumers must
// verify candidates with KeyEqualCols.
func (r Row) HashCols(keyIdx []int, seed uint64) uint64 {
	h := hashing.Init64(seed)
	for _, k := range keyIdx {
		h = r[k].addHash64(h)
	}
	return hashing.Finish64(h)
}

// addHash64 folds the value into a streaming 64-bit hash state. The fold
// mirrors the injective structure of appendEncoded — a kind tag, then a
// kind-specific payload with string lengths made explicit — so that equal
// encodings always produce equal hashes.
func (v Value) addHash64(h uint64) uint64 {
	h = hashing.AddByte64(h, byte(v.kind))
	switch v.kind {
	case KindNull:
		return h
	case KindString:
		h = hashing.AddUint64(h, uint64(len(v.s)))
		return hashing.AddString64(h, v.s)
	case KindFloat:
		return hashing.AddUint64(h, math.Float64bits(v.f))
	default: // int, bool
		return hashing.AddUint64(h, uint64(v.i))
	}
}

// KeyEqual reports encoding equality: whether v and o produce identical
// canonical encodings (appendEncoded). This is stricter than Equal —
// Int(2) and Float(2.0) are Equal but not KeyEqual — and is the notion of
// identity every keyed structure in the engine uses. Floats compare by bit
// pattern, matching the encoding (so -0.0 ≠ 0.0 and NaN == NaN here).
func (v Value) KeyEqual(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindString:
		return v.s == o.s
	case KindFloat:
		return math.Float64bits(v.f) == math.Float64bits(o.f)
	default: // int, bool
		return v.i == o.i
	}
}

// KeyEqualCols reports whether r's idx columns and o's oidx columns have
// identical canonical encodings — the allocation-free equivalent of
// r.KeyOf(idx) == o.KeyOf(oidx). The two index slices must have equal
// length.
func (r Row) KeyEqualCols(idx []int, o Row, oidx []int) bool {
	if len(idx) != len(oidx) {
		return false
	}
	for i := range idx {
		if !r[idx[i]].KeyEqual(o[oidx[i]]) {
			return false
		}
	}
	return true
}
