package svc_test

import (
	"fmt"

	svc "github.com/sampleclean/svc"
)

// ExampleNew builds the paper's running example: a visit-count view over a
// video log, kept queryable while new visits accumulate.
func ExampleNew() {
	d := svc.NewDatabase()
	logT := d.MustCreate("Log", svc.NewSchema([]svc.Column{
		svc.Col("sessionId", svc.KindInt),
		svc.Col("videoId", svc.KindInt),
	}, "sessionId"))
	for i := 0; i < 1000; i++ {
		logT.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(int64(i % 20))})
	}

	plan := svc.GroupByAgg(
		svc.Scan("Log", logT.Schema()),
		[]string{"videoId"},
		svc.CountAs("visitCount"),
	)
	sv, err := svc.New(d, svc.ViewDefinition{Name: "visitView", Plan: plan},
		svc.WithSamplingRatio(0.5))
	if err != nil {
		panic(err)
	}
	fmt.Println("view rows:", sv.View().Data().Len())
	fmt.Println("strategy:", sv.Maintainer().Kind())
	fmt.Println("stale:", sv.Stale())
	// Output:
	// view rows: 20
	// strategy: change-table
	// stale: false
}

// ExampleStaleView_Query answers an aggregate on a stale view: the exact
// stale value is 1000 visits, the truth is 1250, and the SVC estimate
// lands on the truth because every new row deterministically either joins
// the sample or not.
func ExampleStaleView_Query() {
	d := svc.NewDatabase()
	logT := d.MustCreate("Log", svc.NewSchema([]svc.Column{
		svc.Col("sessionId", svc.KindInt),
		svc.Col("videoId", svc.KindInt),
	}, "sessionId"))
	for i := 0; i < 1000; i++ {
		logT.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(int64(i % 20))})
	}
	plan := svc.GroupByAgg(svc.Scan("Log", logT.Schema()),
		[]string{"videoId"}, svc.CountAs("visitCount"))
	sv, err := svc.New(d, svc.ViewDefinition{Name: "visitView", Plan: plan},
		svc.WithSamplingRatio(1.0)) // full "sample" => exact answers
	if err != nil {
		panic(err)
	}
	// 250 new visits arrive.
	for i := 0; i < 250; i++ {
		if err := logT.StageInsert(svc.Row{svc.Int(int64(1000 + i)), svc.Int(int64(i % 20))}); err != nil {
			panic(err)
		}
	}
	ans, err := sv.Query(svc.Sum("visitCount", nil))
	if err != nil {
		panic(err)
	}
	fmt.Printf("stale: %.0f\n", ans.StaleValue)
	fmt.Printf("estimate: %.0f\n", ans.Value)
	// Output:
	// stale: 1000
	// estimate: 1250
}

// ExampleStaleView_Query_asOfEpoch shows the staleness metadata every
// estimate carries: AsOfEpoch identifies the published catalog version the
// answer was computed against, so a reader can tell which maintenance
// boundary an answer reflects — it advances when maintenance publishes and
// never goes backwards within a serving session.
func ExampleStaleView_Query_asOfEpoch() {
	d := svc.NewDatabase()
	logT := d.MustCreate("Log", svc.NewSchema([]svc.Column{
		svc.Col("sessionId", svc.KindInt),
		svc.Col("videoId", svc.KindInt),
	}, "sessionId"))
	for i := 0; i < 1000; i++ {
		logT.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(int64(i % 20))})
	}
	plan := svc.GroupByAgg(svc.Scan("Log", logT.Schema()),
		[]string{"videoId"}, svc.CountAs("visitCount"))
	sv, err := svc.New(d, svc.ViewDefinition{Name: "visitView", Plan: plan},
		svc.WithSamplingRatio(1.0))
	if err != nil {
		panic(err)
	}
	before, err := sv.Query(svc.Sum("visitCount", nil))
	if err != nil {
		panic(err)
	}
	// 100 new visits arrive and a maintenance cycle publishes them.
	for i := 0; i < 100; i++ {
		if err := logT.StageInsert(svc.Row{svc.Int(int64(1000 + i)), svc.Int(int64(i % 20))}); err != nil {
			panic(err)
		}
	}
	if err := sv.MaintainNow(); err != nil {
		panic(err)
	}
	after, err := sv.Query(svc.Sum("visitCount", nil))
	if err != nil {
		panic(err)
	}
	fmt.Println("answers:", before.Value, "then", after.Value)
	fmt.Println("epoch advanced across the maintenance boundary:", after.AsOfEpoch > before.AsOfEpoch)
	// Output:
	// answers: 1000 then 1100
	// epoch advanced across the maintenance boundary: true
}

// ExampleStaleView_MaintainNow shows the maintenance boundary: the view is
// brought up to date, deltas are applied, and the sample rolls forward.
func ExampleStaleView_MaintainNow() {
	d := svc.NewDatabase()
	logT := d.MustCreate("Log", svc.NewSchema([]svc.Column{
		svc.Col("sessionId", svc.KindInt),
		svc.Col("videoId", svc.KindInt),
	}, "sessionId"))
	for i := 0; i < 100; i++ {
		logT.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(int64(i % 5))})
	}
	plan := svc.GroupByAgg(svc.Scan("Log", logT.Schema()),
		[]string{"videoId"}, svc.CountAs("visitCount"))
	sv, err := svc.New(d, svc.ViewDefinition{Name: "v", Plan: plan})
	if err != nil {
		panic(err)
	}
	if err := logT.StageInsert(svc.Row{svc.Int(500), svc.Int(0)}); err != nil {
		panic(err)
	}
	fmt.Println("stale before:", sv.Stale())
	if err := sv.MaintainNow(); err != nil {
		panic(err)
	}
	total, err := sv.ExactQuery(svc.Sum("visitCount", nil))
	if err != nil {
		panic(err)
	}
	fmt.Println("stale after:", sv.Stale())
	fmt.Printf("total visits: %.0f\n", total)
	// Output:
	// stale before: true
	// stale after: false
	// total visits: 101
}
