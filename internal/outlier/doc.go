// Package outlier implements the paper's Section 6: outlier indexing to
// reduce sampling's sensitivity to long-tailed data.
//
// An Index tracks, in a single pass over the base data and its staged
// updates, the records whose indexed attribute exceeds a threshold —
// bounded by a size limit with smallest-record eviction. The push-up rules
// (Definition 5) propagate those records through the view definition to
// materialize the outlier partition O ⊆ S′; the estimators then treat O
// as a deterministic (ratio-1) stratum merged with the sampled stratum
// (Section 6.3, implemented in package estimator).
//
// Concurrency contract: an Index is single-writer — Build/BuildFromVersion
// and Observe mutate it, so construction belongs to one goroutine. The
// snapshot-serving read path never shares a live index across readers:
// the svc layer rebuilds an index per publication epoch from a pinned
// version (BuildFromVersion reads only immutable pinned relations) and
// shares the resulting OutlierSet, which is read-only, via its per-epoch
// cache. Materializer evaluation against a pinned version is safe for
// concurrent use.
package outlier
