package view

import (
	"strings"

	"github.com/sampleclean/svc/internal/algebra"
	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/relation"
)

// Shared-subplan maintenance: the multi-view optimizer's view-layer half.
//
// Every view's maintenance expression re-reads the same staged deltas
// (Scan ΔR / ∇R) and often filters and nets them identically — K views
// over one base table pay K delta scans per cycle. MaintainAtShared
// evaluates the maintenance expression with its shareable subtrees wrapped
// in algebra.CachedNode, so a group cycle that passes one SubplanCache to
// every view evaluates each shared subtree once and fans the columnar
// result out. Which subtrees are shareable is a pure naming question here:
// base tables and their pinned deltas are immutable for the whole cycle,
// while the per-view stale binding (§view) differs per consumer.

// maintenancePolicy classifies scan bindings for algebra.CacheSubplans:
// everything a pinned catalog version binds is stable except the per-view
// stale-view relation; the delta bindings are the Δ/∇ relations.
func maintenancePolicy() algebra.CachePolicy {
	staleMark := StaleName("")
	insMark, delMark := db.InsOf(""), db.DelOf("")
	return algebra.CachePolicy{
		Stable: func(name string) bool { return !strings.HasPrefix(name, staleMark) },
		Delta: func(name string) bool {
			return strings.HasPrefix(name, insMark) || strings.HasPrefix(name, delMark)
		},
	}
}

// SharedExpression returns the execution-form maintenance expression with
// CachedNodes marking the shareable subtrees. Without a cache in the
// context it evaluates identically to the regular execution plan.
func (m *Maintainer) SharedExpression() algebra.Node { return m.sharedExpr }

// MaintainAtShared is MaintainAt with shared-subplan caching: the
// evaluation context carries cache, so every CachedNode subtree is
// computed once per cycle across all views maintained with the same
// cache. The cache must be pinned to pin's epoch (algebra.SubplanCache
// bypasses itself otherwise — correct, but with nothing shared). The
// caller owns the cache and must Release it after the last view of the
// cycle; the returned relation holds no cache-owned storage.
func (m *Maintainer) MaintainAtShared(pin *db.Version, stale *relation.Relation, cache *algebra.SubplanCache) (*relation.Relation, MaintainStats, error) {
	ctx := pin.Context()
	ctx.Subplans = cache
	return m.maintainExpr(ctx, stale, m.sharedExpr)
}

// BaseTables returns the distinct base tables the view definition reads,
// in first-appearance order. The refresh scheduler uses them to weigh a
// view's staleness by the delta rows pending against exactly the tables
// that feed it.
func (v *View) BaseTables() []string {
	var names []string
	seen := make(map[string]bool)
	algebra.Walk(v.def.Plan, func(n algebra.Node) {
		if s, ok := n.(*algebra.ScanNode); ok && !seen[s.Name()] {
			seen[s.Name()] = true
			names = append(names, s.Name())
		}
	})
	return names
}
