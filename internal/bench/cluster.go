package bench

// The "cluster" experiment: the serving workload pushed through the
// sharded scatter-gather tier. A fleet of N in-process svcd servers each
// holds its hash partition of the videolog dataset behind one stateless
// router; the workload is the production-shaped single-key aggregate
// (WHERE videoId = K), which the router prunes to the one owning shard —
// so each query pays 1/N of the single-process scan cost. That per-query
// work reduction, not parallelism, is the scaling this experiment gates
// (it holds even on a single-core host, where scatter fan-out cannot
// help). The full-view scatter+merge path is reported alongside,
// unmerged-truth-checked, as the consistency witness.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	svc "github.com/sampleclean/svc"
	"github.com/sampleclean/svc/client"
	"github.com/sampleclean/svc/internal/shard"
	"github.com/sampleclean/svc/server"
)

func init() {
	register("cluster",
		"sharded serving: routed (placement-pruned) and scattered (CLT-merged) qps through the router at 1..N shards",
		cluster)
}

// clusterFleet is one in-process fleet: N servers plus the router.
type clusterFleet struct {
	servers []*server.Server
	router  *server.Router
	videos  int
}

// clusterVideolog builds one shard's partition of the cluster-scale
// videolog dataset. Every shard consumes the identical deterministic
// generation stream and keeps only owned rows, exactly like `svcd
// -shard-id` — the fleet's union is the unsharded dataset. The dataset is
// larger than the serve experiments' (the view is the per-query scan
// cost, and routing's win is proportional to it).
func clusterVideolog(s Scale, pl shard.Placement, id int) (*svc.Database, *svc.StaleView, int, error) {
	videos := scaled(s, 24_000)
	visits := scaled(s, 72_000)
	rng := rand.New(rand.NewSource(7))
	d := svc.NewDatabase()
	video := d.MustCreate("Video", svc.NewSchema([]svc.Column{
		svc.Col("videoId", svc.KindInt),
		svc.Col("ownerId", svc.KindInt),
		svc.Col("duration", svc.KindFloat),
	}, "videoId"))
	for i := 0; i < videos; i++ {
		row := svc.Row{svc.Int(int64(i)), svc.Int(rng.Int63n(50)), svc.Float(rng.Float64() * 3)}
		if pl.Owns("Video", row, id) {
			video.MustInsert(row)
		}
	}
	logT := d.MustCreate("Log", svc.NewSchema([]svc.Column{
		svc.Col("sessionId", svc.KindInt),
		svc.Col("videoId", svc.KindInt),
	}, "sessionId"))
	for i := 0; i < visits; i++ {
		row := svc.Row{svc.Int(int64(i)), svc.Int(rng.Int63n(int64(videos)))}
		if pl.Owns("Log", row, id) {
			logT.MustInsert(row)
		}
	}
	plan := svc.GroupByAgg(
		svc.Join(
			svc.Scan("Log", logT.Schema()),
			svc.Scan("Video", video.Schema()),
			svc.JoinSpec{Type: svc.Inner, On: svc.On("videoId", "videoId"), Merge: true},
		),
		[]string{"videoId", "ownerId"},
		svc.CountAs("visitCount"),
		svc.SumAs(svc.ColRef("duration"), "totalDuration"),
	)
	sv, err := svc.New(d, svc.ViewDefinition{Name: "visitView", Plan: plan},
		svc.WithSamplingRatio(0.1), svc.WithParallelism(DefaultParallelism()),
		svc.WithColumnar(DefaultColumnar()))
	if err != nil {
		return nil, nil, 0, err
	}
	return d, sv, videos, nil
}

// startClusterFleet brings up N shard servers and the router over them.
func startClusterFleet(s Scale, n int) (*clusterFleet, error) {
	pl := shard.Videolog(n)
	f := &clusterFleet{}
	addrs := make([]string, 0, n)
	for id := 0; id < n; id++ {
		d, sv, videos, err := clusterVideolog(s, pl, id)
		if err != nil {
			return nil, err
		}
		f.videos = videos
		srv := server.New(d, server.Config{Addr: "127.0.0.1:0"})
		if err := srv.Register(sv); err != nil {
			return nil, err
		}
		if err := srv.Start(); err != nil {
			return nil, err
		}
		f.servers = append(f.servers, srv)
		addrs = append(addrs, srv.Addr())
	}
	rt, err := server.NewRouter(server.RouterConfig{
		Addr:      "127.0.0.1:0",
		Shards:    addrs,
		Placement: pl,
	})
	if err != nil {
		return nil, err
	}
	if err := rt.Start(); err != nil {
		return nil, err
	}
	f.router = rt
	return f, nil
}

func (f *clusterFleet) shutdown() error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var first error
	if err := f.router.Shutdown(ctx); err != nil {
		first = err
	}
	for _, srv := range f.servers {
		if err := srv.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// hammer runs `clients` goroutines issuing queries built by mkSQL for a
// fixed window through the router and returns the completed count.
func hammer(addr string, clients int, window time.Duration, mkSQL func(worker, i int) string) (int64, error) {
	stop := make(chan struct{})
	var done atomic.Int64
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := client.New(addr)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := c.Query(mkSQL(g, i))
				if err != nil {
					errs[g] = err
					return
				}
				if resp.Estimate == nil {
					errs[g] = fmt.Errorf("missing estimate in %+v", resp)
					return
				}
				done.Add(1)
			}
		}(g)
	}
	time.Sleep(window)
	close(stop)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return done.Load(), nil
}

func cluster(s Scale) (*Table, error) {
	t := &Table{
		ID:    "cluster",
		Title: "sharded scatter-gather tier: router throughput at 1..N shards (single-key routed + full-view merged)",
		Header: []string{"shards", "routedQ", "routedQPS", "speedup",
			"scatterQPS", "scatterX", "mergedRelErr"},
	}
	const (
		routedClients  = 3
		scatterClients = 2
		routedRounds   = 3
	)
	routedWindow := 500 * time.Millisecond
	scatterWindow := 300 * time.Millisecond
	var truth float64
	var baseRouted, baseScatter float64
	for _, n := range []int{1, 2, 4} {
		f, err := startClusterFleet(s, n)
		if err != nil {
			return nil, err
		}
		routerAddr := f.router.Addr()
		cl := client.New(routerAddr)

		// Scatter+merge consistency witness: the merged full-view answer
		// must reproduce the 1-shard truth (no churn → the corrections are
		// zero and the composed value is exact, not just within-CI).
		resp, err := cl.Query(`SELECT SUM(totalDuration) FROM visitView`)
		if err != nil {
			return nil, fmt.Errorf("cluster: scatter warmup at %d shards: %w", n, err)
		}
		if resp.Estimate == nil {
			return nil, fmt.Errorf("cluster: scatter answer missing estimate: %+v", resp)
		}
		merged := resp.Estimate.Value
		if n == 1 {
			truth = merged
		}
		relErr := 0.0
		if truth != 0 {
			relErr = math.Abs(merged-truth) / math.Abs(truth)
		}
		if relErr > 1e-9 {
			return nil, fmt.Errorf("cluster: merged estimate %g at %d shards diverges from truth %g (rel %g)",
				merged, n, truth, relErr)
		}

		// Routed phase: single-key aggregates, pruned to the owning shard.
		// Best of a few rounds: each round is one fixed window, and the max
		// throughput across rounds is the least-noise estimate of capacity
		// (a background hiccup can only slow a round down, never speed it
		// up). The first round doubles as warmup.
		var routed int64
		for r := 0; r < routedRounds; r++ {
			q, err := hammer(routerAddr, routedClients, routedWindow, func(g, i int) string {
				k := (g*7919 + i*13 + r*104729) % f.videos
				return fmt.Sprintf(`SELECT SUM(totalDuration) FROM visitView WHERE videoId = %d`, k)
			})
			if err != nil {
				return nil, fmt.Errorf("cluster: routed phase at %d shards: %w", n, err)
			}
			if q > routed {
				routed = q
			}
		}
		// Scatter phase: full-view merges (informational — fan-out cannot
		// beat one process on a single-core host; the routed column is the
		// scaling claim).
		scattered, err := hammer(routerAddr, scatterClients, scatterWindow, func(g, i int) string {
			return `SELECT SUM(totalDuration) FROM visitView`
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: scatter phase at %d shards: %w", n, err)
		}
		if err := f.shutdown(); err != nil {
			return nil, fmt.Errorf("cluster: shutdown at %d shards: %w", n, err)
		}

		routedQPS := float64(routed) / routedWindow.Seconds()
		scatterQPS := float64(scattered) / scatterWindow.Seconds()
		if n == 1 {
			baseRouted, baseScatter = routedQPS, scatterQPS
		}
		t.AddRow(n, routed, routedQPS, routedQPS/baseRouted,
			scatterQPS, scatterQPS/baseScatter, relErr)
	}
	t.Notes = append(t.Notes,
		"routed = WHERE videoId=K pruned to the owning shard: each query scans 1/N of the view, the scaling that survives a single-core host",
		"scatter = full-view CLT merge across all shards (consistency witness: merged value must equal the 1-shard truth exactly)",
		"fleet is in-process over loopback HTTP; no churn, so svc+corr corrections are zero and merges are exact")
	return t, nil
}
