package conviva

import (
	"math/rand"
	"testing"

	"github.com/sampleclean/svc/internal/clean"
	"github.com/sampleclean/svc/internal/estimator"
	"github.com/sampleclean/svc/internal/view"
)

func smallCfg(seed int64) Config {
	return Config{Records: 4000, Users: 120, Resources: 60, Providers: 10, Days: 20, Z: 1.2, Seed: seed}
}

func TestGenerateLog(t *testing.T) {
	g := NewGenerator(smallCfg(1))
	d, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	tab := d.Table(LogTable)
	if tab.Len() != 4000 {
		t.Fatalf("records = %d", tab.Len())
	}
	// errors present but rare; days span the configured range.
	errs, maxDay := 0, int64(0)
	for _, row := range tab.Rows().Rows() {
		if row[4].AsInt() > 0 {
			errs++
		}
		if row[7].AsInt() > maxDay {
			maxDay = row[7].AsInt()
		}
	}
	if errs == 0 || errs > 800 {
		t.Errorf("error records = %d", errs)
	}
	if maxDay < 15 {
		t.Errorf("max day = %d", maxDay)
	}
}

func TestStageAppendIsInsertOnly(t *testing.T) {
	g := NewGenerator(smallCfg(2))
	d, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.StageAppend(d, 0.1); err != nil {
		t.Fatal(err)
	}
	ins, del := d.Table(LogTable).PendingSize()
	if del != 0 {
		t.Errorf("appends should not delete, got %d deletions", del)
	}
	if ins < 350 || ins > 450 {
		t.Errorf("staged %d inserts for 10%% of 4000", ins)
	}
}

func TestAllViewsMaterializeAndMaintain(t *testing.T) {
	g := NewGenerator(smallCfg(3))
	d, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	defs := Views()
	if len(defs) != 8 {
		t.Fatalf("views = %d", len(defs))
	}
	views := make([]*view.View, len(defs))
	maints := make([]*view.Maintainer, len(defs))
	recomputeViews := map[string]bool{"V4": true, "V5": true, "V6": true}
	for i, def := range defs {
		v, err := view.Materialize(d, def)
		if err != nil {
			t.Fatalf("%s: %v", def.Name, err)
		}
		if v.Data().Len() == 0 {
			t.Errorf("%s is empty", def.Name)
		}
		m, err := view.NewMaintainer(v)
		if err != nil {
			t.Fatalf("%s: %v", def.Name, err)
		}
		if recomputeViews[def.Name] != (m.Kind() == view.Recompute) {
			t.Errorf("%s: strategy %v", def.Name, m.Kind())
		}
		views[i], maints[i] = v, m
	}
	if err := g.StageAppend(d, 0.15); err != nil {
		t.Fatal(err)
	}
	snap := d.Snapshot()
	if err := snap.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	for i, def := range defs {
		truth, err := view.Materialize(snap, def)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := maints[i].Maintain(d); err != nil {
			t.Fatalf("%s: %v", def.Name, err)
		}
		got, want := views[i].Data(), truth.Data()
		if got.Len() != want.Len() {
			t.Errorf("%s: %d rows, want %d", def.Name, got.Len(), want.Len())
			continue
		}
		keyIdx := want.Schema().Key()
		for _, wrow := range want.Rows() {
			grow, ok := got.GetByEncodedKey(wrow.KeyOf(keyIdx))
			if !ok {
				t.Errorf("%s: missing %v", def.Name, wrow)
				break
			}
			for c := range wrow {
				dv := grow[c].AsFloat() - wrow[c].AsFloat()
				if dv > 1e-6 || dv < -1e-6 {
					t.Errorf("%s: %v vs %v", def.Name, grow, wrow)
					break
				}
			}
		}
	}
}

// SVC on the Conviva workload: high accuracy at 10% samples (the paper
// reports ~1% error) on the maintainable views.
func TestConvivaSVCAccuracy(t *testing.T) {
	g := NewGenerator(Config{Records: 12000, Users: 250, Resources: 120, Providers: 15, Days: 25, Z: 1.2, Seed: 4})
	d, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for _, def := range Views() {
		if def.Name == "V4" || def.Name == "V5" {
			continue // nested views exercise recompute; cleaning still works but slower — covered above
		}
		v, err := view.Materialize(d, def)
		if err != nil {
			t.Fatal(err)
		}
		m, err := view.NewMaintainer(v)
		if err != nil {
			t.Fatal(err)
		}
		c, err := clean.New(m, 0.1, nil)
		if err != nil {
			t.Fatal(err)
		}
		snap := d.Snapshot()
		if err := g.StageAppend(d, 0.1); err != nil {
			t.Fatal(err)
		}
		samples, err := c.Clean(d)
		if err != nil {
			t.Fatal(err)
		}
		truthSnap := d.Snapshot()
		if err := truthSnap.ApplyDeltas(); err != nil {
			t.Fatal(err)
		}
		truthV, err := view.Materialize(truthSnap, def)
		if err != nil {
			t.Fatal(err)
		}
		var staleSum, corrSum float64
		n := 0
		for _, gq := range GenerateQueries(rng, def.Name, g.Config(), 20) {
			truth, err := estimator.RunExact(truthV.Data(), gq.Query)
			if err != nil {
				t.Fatal(err)
			}
			if truth == 0 || truth != truth {
				continue
			}
			staleAns, err := estimator.RunExact(v.Data(), gq.Query)
			if err != nil {
				t.Fatal(err)
			}
			corr, err := estimator.Corr(v.Data(), samples, gq.Query, 0.95)
			if err != nil {
				continue // e.g. avg over empty matching sample
			}
			staleSum += estimator.RelativeError(staleAns, truth)
			corrSum += estimator.RelativeError(corr.Value, truth)
			n++
		}
		if n == 0 {
			t.Fatalf("%s: no valid queries", def.Name)
		}
		t.Logf("%s: stale %.4f corr %.4f (mean rel err, %d queries)", def.Name, staleSum/float64(n), corrSum/float64(n), n)
		if corrSum >= staleSum {
			t.Errorf("%s: SVC+CORR (%.4f) should beat stale (%.4f)", def.Name, corrSum/float64(n), staleSum/float64(n))
		}
		// restore the database for the next view
		d = snap
	}
}

func TestGenerateQueriesUnknownView(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if GenerateQueries(rng, "nope", smallCfg(1), 5) != nil {
		t.Error("unknown view should yield no queries")
	}
}
