package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/relation"
)

// SyncEachCommit, as Options.SyncInterval, makes every commit wait for
// its own fsync instead of a group-commit window — maximum durability
// granularity, minimum throughput.
const SyncEachCommit = -1 * time.Nanosecond

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// ErrKilled is returned to commits in flight when Kill crash-stops the
// log (tests).
var ErrKilled = errors.New("wal: log killed")

// ErrFailed marks the sticky poisoned state: a write, fsync, or checkpoint
// failure means durability was already lost, so every later operation
// reports an error wrapping ErrFailed (and the root cause) instead of
// pretending. Match with errors.Is.
var ErrFailed = errors.New("wal: log failed")

// Options configure a Log. Zero values select the defaults noted on each
// field; negative values disable the corresponding bound.
type Options struct {
	// SyncInterval is the group-commit window: the syncer goroutine
	// coalesces all records buffered within one interval into a single
	// write+fsync. 0 means 2ms; SyncEachCommit syncs every record.
	SyncInterval time.Duration
	// SyncBytes nudges the syncer early once this many unsynced bytes
	// are buffered, bounding the burst a slow interval could accumulate.
	// 0 means 256 KiB.
	SyncBytes int
	// SegmentBytes rotates to a new segment file once the active one
	// exceeds this size (checked at flush granularity, so a soft bound).
	// 0 means 16 MiB.
	SegmentBytes int
	// CheckpointBytes triggers a checkpoint (and compaction of retired
	// segments) once that many closed-segment bytes are wholly retired by
	// maintenance boundaries. 0 means 64 MiB.
	CheckpointBytes int
	// MaxUnsyncedBytes is the backpressure bound on buffered-not-yet-
	// synced bytes; Admit blocks (and Shed reports true) above it.
	// 0 means 16 MiB.
	MaxUnsyncedBytes int
	// MaxUnappliedBytes is the backpressure bound on logged-but-not-yet-
	// retired bytes — the log depth a recovery would replay. 0 means
	// 256 MiB.
	MaxUnappliedBytes int
	// FS is the filesystem seam; nil means the real one (OSFS).
	FS FS
}

func (o Options) withDefaults() Options {
	if o.SyncInterval == 0 {
		o.SyncInterval = 2 * time.Millisecond
	}
	if o.SyncBytes == 0 {
		o.SyncBytes = 256 << 10
	}
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 16 << 20
	}
	if o.CheckpointBytes == 0 {
		o.CheckpointBytes = 64 << 20
	}
	if o.MaxUnsyncedBytes == 0 {
		o.MaxUnsyncedBytes = 16 << 20
	}
	if o.MaxUnappliedBytes == 0 {
		o.MaxUnappliedBytes = 256 << 20
	}
	if o.FS == nil {
		o.FS = OSFS{}
	}
	return o
}

// Segment file layout: 8-byte magic, u64 first sequence number, then
// framed records (record.go).
const (
	segMagic     = "SVCWAL01"
	segHeaderLen = 16
	segSuffix    = ".wal"
	ckptSuffix   = ".ckpt"
	tmpSuffix    = ".tmp"
)

// segment is one closed (no longer written) log file.
type segment struct {
	name  string // full path
	first uint64 // header: sequence of the first record
	last  uint64 // sequence of the last valid record (0 when empty)
	bytes int    // valid byte length (header + intact frames)
}

// seqSize tracks one unretired record for the backpressure depth gauge.
type seqSize struct {
	seq  uint64
	size int
}

// pendingBoundary is an appended, not-yet-synced boundary record.
type pendingBoundary struct {
	seq, cut, applied uint64
}

// boundarySnap is the latest boundary's published version, retained until
// the checkpoint threshold trips.
type boundarySnap struct {
	v            *db.Version
	cut, applied uint64
}

// Log is the durable maintenance log. It implements db.DeltaLog; see
// doc.go for the durability contract and package db's DeltaLog for the
// locking protocol. All methods are safe for concurrent use.
type Log struct {
	dir string
	fs  FS
	opt Options

	mu         sync.Mutex
	commitCond *sync.Cond // syncedSeq advanced (or the log failed/closed)
	admitCond  *sync.Cond // depth dropped (or the log failed/closed)

	seq       uint64 // last assigned sequence number
	syncedSeq uint64 // last sequence covered by an fsync
	buf       []byte // encoded frames awaiting flush
	swap      []byte // double buffer: reused as buf at each flush
	bufFirst  uint64 // sequence of the first record in buf
	unsynced  int    // bytes in buf

	pending  []pendingBoundary
	lastSnap *boundarySnap

	unapplied      []seqSize // stage/base records past the last synced boundary cut
	unappliedBytes int
	retiredCut     uint64 // last synced boundary's cut
	retiredApplied uint64 // last synced boundary's applied counter

	active      File // syncer-owned; metadata below guarded by mu
	activeName  string
	activeFirst uint64
	activeLast  uint64
	activeBytes int
	segs        []segment

	ckptName    string
	ckptCut     uint64
	ckptApplied uint64
	ckptBytes   int

	closed bool
	failed error

	appends, syncs, boundaries uint64
	checkpoints, compactions   uint64
	stalls                     uint64
	syncTotal, syncMax         time.Duration
	syncRing                   [256]time.Duration
	syncRingN                  uint64

	nudgeC   chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// Open validates and opens (creating if absent) the log directory: it
// removes crash debris, picks the newest intact checkpoint, scans every
// segment's intact record prefix (a torn tail is tolerated only where a
// crash can produce one — after the last valid record in the log — and is
// truncated away so it cannot sit before the tail once later appends open
// a new segment), and resumes sequence numbering past everything found.
// The returned log
// accepts appends immediately, but callers that want the logged state
// replayed must call Recover first (appends move the log past the
// recovered suffix).
func Open(dir string, opt Options) (*Log, error) {
	opt = opt.withDefaults()
	l := &Log{
		dir:    dir,
		fs:     opt.FS,
		opt:    opt,
		nudgeC: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	l.commitCond = sync.NewCond(&l.mu)
	l.admitCond = sync.NewCond(&l.mu)
	if err := l.fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	if err := l.load(); err != nil {
		return nil, err
	}
	l.wg.Add(1)
	go l.run()
	return l, nil
}

// load scans the directory and rebuilds the log's metadata.
func (l *Log) load() error {
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: open %s: %w", l.dir, err)
	}
	var segNames, ckptNames []string
	for _, name := range names {
		switch {
		case strings.HasSuffix(name, tmpSuffix):
			// Interrupted checkpoint write; never referenced.
			_ = l.fs.Remove(filepath.Join(l.dir, name))
		case strings.HasSuffix(name, segSuffix):
			segNames = append(segNames, name)
		case strings.HasSuffix(name, ckptSuffix):
			ckptNames = append(ckptNames, name)
		}
	}

	// Newest intact checkpoint wins; invalid or superseded ones are crash
	// debris (the compactor removes old checkpoints only after the new
	// one is durable, so an invalid newest never strands us).
	sort.Sort(sort.Reverse(sort.StringSlice(ckptNames)))
	for _, name := range ckptNames {
		path := filepath.Join(l.dir, name)
		ck, err := readCheckpointMeta(l.fs, path)
		if err == nil && l.ckptName == "" {
			l.ckptName = path
			l.ckptCut = ck.cut
			l.ckptApplied = ck.applied
			l.ckptBytes = ck.bytes
			continue
		}
		_ = l.fs.Remove(path)
	}

	// Scan segments in sequence order.
	sort.Strings(segNames)
	type scanned struct {
		seg  segment
		ok   bool // header valid
		torn bool
	}
	var scans []scanned
	for _, name := range segNames {
		path := filepath.Join(l.dir, name)
		data, err := readAll(l.fs, path)
		if err != nil {
			return fmt.Errorf("wal: open %s: %w", path, err)
		}
		sc := scanned{seg: segment{name: path}}
		if len(data) >= segHeaderLen && string(data[:8]) == segMagic {
			sc.ok = true
			sc.seg.first = binary.LittleEndian.Uint64(data[8:])
			sc.seg.bytes = segHeaderLen
			rest := data[segHeaderLen:]
			for len(rest) > 0 {
				r, n, err := decodeRecord(rest)
				if errors.Is(err, errTorn) {
					sc.torn = true
					break
				}
				if err != nil {
					return fmt.Errorf("wal: open %s: corrupt record after seq %d: %w", path, sc.seg.last, err)
				}
				sc.seg.last = r.seq
				sc.seg.bytes += n
				rest = rest[n:]
			}
		}
		scans = append(scans, sc)
	}
	// A torn tail (or an unreadable header) is the expected shape of a
	// crash, but only at the end of the log: find the last segment with
	// any valid record; anything damaged before it is real corruption,
	// anything after it is header-only/torn debris from a crashed
	// rotation, safely removed (its records were never acknowledged).
	tail := -1
	for i, sc := range scans {
		if sc.seg.last > 0 {
			tail = i
		}
	}
	for i, sc := range scans {
		switch {
		case i < tail && (!sc.ok || sc.torn):
			return fmt.Errorf("wal: open %s: damaged before log tail (segment %s)", l.dir, sc.seg.name)
		case i > tail || sc.seg.last == 0:
			_ = l.fs.Remove(sc.seg.name)
		default:
			if sc.torn {
				// Truncate the torn bytes now, while they are still at the
				// log tail: new appends go to a later segment, and a tear
				// left in place would read as mid-log corruption on every
				// subsequent Open.
				if err := l.truncateTornTail(sc.seg); err != nil {
					return err
				}
			}
			l.segs = append(l.segs, sc.seg)
		}
	}

	// Rebuild sequence numbering and the retirement gauge from the
	// surviving records.
	l.seq = l.ckptCut
	l.retiredCut = l.ckptCut
	l.retiredApplied = l.ckptApplied
	for _, seg := range l.segs {
		if err := l.forEachSegRecord(seg, func(r record) error {
			if r.seq > l.seq {
				l.seq = r.seq
			}
			switch r.typ {
			case recBoundary:
				if r.cut > l.retiredCut {
					l.retiredCut = r.cut
					l.retiredApplied = r.applied
				}
			default:
				l.unapplied = append(l.unapplied, seqSize{seq: r.seq, size: rowWeight(r)})
			}
			return nil
		}); err != nil {
			return err
		}
	}
	kept := l.unapplied[:0]
	for _, e := range l.unapplied {
		if e.seq > l.retiredCut {
			kept = append(kept, e)
			l.unappliedBytes += e.size
		}
	}
	l.unapplied = kept
	l.syncedSeq = l.seq
	return nil
}

// truncateTornTail rewrites the tail segment down to its validated prefix
// (temp file, fsync, rename, directory sync), discarding the torn bytes a
// crash left past the last intact record. The write-to-temp shape keeps
// every acknowledged record safe at each step: a crash before the rename
// leaves the original file (with its tolerable tear) in place, a crash
// after it leaves the clean rewrite.
func (l *Log) truncateTornTail(seg segment) error {
	data, err := readAll(l.fs, seg.name)
	if err != nil {
		return fmt.Errorf("wal: open %s: %w", seg.name, err)
	}
	if len(data) <= seg.bytes {
		return nil
	}
	tmp := seg.name + tmpSuffix
	f, err := l.fs.Create(tmp)
	if err == nil {
		_, err = f.Write(data[:seg.bytes])
		if err == nil {
			err = f.Sync()
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err == nil {
		err = l.fs.Rename(tmp, seg.name)
	}
	if err == nil {
		err = l.fs.SyncDir(l.dir)
	}
	if err != nil {
		return fmt.Errorf("wal: open %s: truncate torn tail: %w", seg.name, err)
	}
	return nil
}

// rowWeight approximates a record's contribution to log depth.
func rowWeight(r record) int {
	n := frameHeader + 9 + len(r.table) + 2
	for _, v := range r.row {
		switch v.Kind() {
		case relation.KindString:
			n += 5 + len(v.AsString())
		case relation.KindNull:
			n++
		case relation.KindBool:
			n += 2
		default:
			n += 9
		}
	}
	return n
}

// forEachSegRecord streams the intact records of one segment.
func (l *Log) forEachSegRecord(seg segment, fn func(record) error) error {
	data, err := readAll(l.fs, seg.name)
	if err != nil {
		return fmt.Errorf("wal: read %s: %w", seg.name, err)
	}
	if len(data) < segHeaderLen {
		return fmt.Errorf("wal: read %s: truncated header", seg.name)
	}
	rest := data[segHeaderLen:]
	for len(rest) > 0 {
		r, n, err := decodeRecord(rest)
		if err != nil {
			// Torn tail past the validated prefix; Open already vetted
			// where tears are allowed.
			return nil
		}
		if err := fn(r); err != nil {
			return err
		}
		rest = rest[n:]
	}
	return nil
}

func readAll(fs FS, path string) ([]byte, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return data, err
}

func segName(dir string, first uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%016x%s", first, segSuffix))
}

func ckptName(dir string, cut uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%016x%s", cut, ckptSuffix))
}

// parseHexName extracts the leading hex counter of a log file name.
func parseHexName(name, suffix string) (uint64, bool) {
	base := strings.TrimSuffix(filepath.Base(name), suffix)
	n, err := strconv.ParseUint(base, 16, 64)
	return n, err == nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// nudge wakes the syncer without blocking.
func (l *Log) nudge() {
	select {
	case l.nudgeC <- struct{}{}:
	default:
	}
}

// Admit implements db.DeltaLog: it blocks while either depth bound is
// exceeded, forcing producers down to the sync/apply rate instead of
// growing the buffer and the replayable suffix without limit. Call with
// no locks held.
func (l *Log) Admit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	stalled := false
	for {
		if l.failed != nil {
			return l.failed
		}
		if l.closed {
			return ErrClosed
		}
		if !l.overLimitLocked() {
			return nil
		}
		if !stalled {
			stalled = true
			l.stalls++
		}
		l.nudge()
		l.admitCond.Wait()
	}
}

func (l *Log) overLimitLocked() bool {
	if l.opt.MaxUnsyncedBytes > 0 && l.unsynced > l.opt.MaxUnsyncedBytes {
		return true
	}
	if l.opt.MaxUnappliedBytes > 0 && l.unappliedBytes > l.opt.MaxUnappliedBytes {
		return true
	}
	return false
}

// Shed reports whether a load-shedding caller (the HTTP ingest path)
// should reject now rather than block in Admit.
func (l *Log) Shed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed == nil && !l.closed && l.overLimitLocked()
}

// Append implements db.DeltaLog: buffer one mutation record, assign its
// sequence number, and return the commit wait. Called under the catalog
// writer lock; does no I/O.
func (l *Log) Append(table string, op db.DeltaOp, row relation.Row) (func() error, error) {
	var typ uint8
	switch op {
	case db.OpInsert:
		typ = recInsert
	case db.OpUpdate:
		typ = recUpdate
	case db.OpDelete:
		typ = recDelete
	case db.OpBase:
		typ = recBase
	default:
		return nil, fmt.Errorf("wal: unknown delta op %d", op)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return nil, err
	}
	l.seq++
	r := record{typ: typ, seq: l.seq, table: table, row: row}
	seq, size := l.bufferLocked(&r)
	l.appends++
	l.unapplied = append(l.unapplied, seqSize{seq: seq, size: size})
	l.unappliedBytes += size
	return l.commitFn(seq), nil
}

// Boundary implements db.DeltaLog: buffer a maintenance-boundary record
// and retain the published version for checkpointing. Called under the
// catalog writer lock at the end of ApplyVersion.
func (l *Log) Boundary(applied, cut uint64, snap *db.Version) (func() error, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return nil, err
	}
	l.seq++
	r := record{typ: recBoundary, seq: l.seq, cut: cut, applied: applied}
	seq, _ := l.bufferLocked(&r)
	l.boundaries++
	l.pending = append(l.pending, pendingBoundary{seq: seq, cut: cut, applied: applied})
	l.lastSnap = &boundarySnap{v: snap, cut: cut, applied: applied}
	return l.commitFn(seq), nil
}

// SeqNow implements db.DeltaLog.
func (l *Log) SeqNow() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

func (l *Log) usableLocked() error {
	if l.failed != nil {
		return l.failed
	}
	if l.closed {
		return ErrClosed
	}
	return nil
}

// bufferLocked encodes r into the append buffer and returns its sequence
// and encoded size.
func (l *Log) bufferLocked(r *record) (uint64, int) {
	if len(l.buf) == 0 {
		l.bufFirst = r.seq
	}
	before := len(l.buf)
	l.buf = appendRecord(l.buf, r)
	size := len(l.buf) - before
	l.unsynced += size
	if l.opt.SyncInterval < 0 || l.unsynced >= l.opt.SyncBytes {
		l.nudge()
	}
	return r.seq, size
}

// commitFn returns the group-commit wait for seq: the caller blocks until
// the syncer's next window (interval tick, byte-threshold nudge, or — in
// SyncEachCommit mode — the append's own nudge) covers it, so one fsync
// acknowledges every record buffered in the window.
func (l *Log) commitFn(seq uint64) func() error {
	return func() error {
		l.mu.Lock()
		defer l.mu.Unlock()
		for l.syncedSeq < seq && l.failed == nil && !l.closed {
			l.commitCond.Wait()
		}
		if l.syncedSeq >= seq {
			return nil
		}
		if l.failed != nil {
			return l.failed
		}
		return ErrClosed
	}
}

// run is the syncer goroutine: the only writer of segment files. It
// wakes on the group-commit ticker or an early nudge and flushes the
// buffer with one write+fsync.
func (l *Log) run() {
	defer l.wg.Done()
	var tickC <-chan time.Time
	if l.opt.SyncInterval > 0 {
		tick := time.NewTicker(l.opt.SyncInterval)
		defer tick.Stop()
		tickC = tick.C
	}
	for {
		select {
		case <-l.done:
			return
		case <-l.nudgeC:
		case <-tickC:
		}
		l.flush()
	}
}

// flush drains the buffer to the active segment (rotating first when
// full), fsyncs, and publishes the new durable frontier. Runs on the
// syncer goroutine (or on Close after the syncer stopped) — never
// concurrently with itself.
func (l *Log) flush() {
	l.mu.Lock()
	if l.failed != nil {
		l.mu.Unlock()
		return
	}
	if len(l.buf) == 0 {
		ck := l.dueCheckpointLocked()
		l.mu.Unlock()
		if ck != nil {
			l.checkpoint(ck)
		}
		return
	}
	chunk := l.buf
	l.buf = l.swap[:0]
	l.swap = nil
	first := l.bufFirst
	last := l.seq
	bounds := l.pending
	l.pending = nil
	rotate := l.active == nil ||
		(l.opt.SegmentBytes > 0 && l.activeBytes > segHeaderLen && l.activeBytes+len(chunk) > l.opt.SegmentBytes)
	l.mu.Unlock()

	start := time.Now()
	var err error
	if rotate {
		err = l.openSegment(first)
	}
	if err == nil {
		_, err = l.active.Write(chunk)
	}
	if err == nil {
		err = l.active.Sync()
	}
	dur := time.Since(start)
	if err != nil {
		l.fail(err)
		return
	}

	l.mu.Lock()
	l.activeBytes += len(chunk)
	l.activeLast = last
	l.syncedSeq = last
	l.unsynced -= len(chunk)
	l.swap = chunk[:0]
	l.syncs++
	l.syncTotal += dur
	if dur > l.syncMax {
		l.syncMax = dur
	}
	l.syncRing[l.syncRingN%uint64(len(l.syncRing))] = dur
	l.syncRingN++
	for _, b := range bounds {
		l.retireLocked(b)
	}
	ck := l.dueCheckpointLocked()
	l.commitCond.Broadcast()
	l.admitCond.Broadcast()
	l.mu.Unlock()
	if ck != nil {
		l.checkpoint(ck)
	}
}

// retireLocked advances the retirement frontier past one synced boundary:
// every stage record with seq ≤ cut is folded into the base tables and no
// longer counts toward the replayable depth.
func (l *Log) retireLocked(b pendingBoundary) {
	i := 0
	for i < len(l.unapplied) && l.unapplied[i].seq <= b.cut {
		l.unappliedBytes -= l.unapplied[i].size
		i++
	}
	l.unapplied = l.unapplied[i:]
	l.retiredCut = b.cut
	l.retiredApplied = b.applied
}

// dueCheckpointLocked claims the retained boundary snapshot when enough
// closed-segment bytes are wholly retired to be worth compacting.
func (l *Log) dueCheckpointLocked() *boundarySnap {
	if l.lastSnap == nil || l.opt.CheckpointBytes <= 0 {
		return nil
	}
	if l.lastSnap.cut > l.retiredCut {
		// Not durable yet; wait for the boundary record's own sync.
		return nil
	}
	retirable := 0
	for _, s := range l.segs {
		if s.last > 0 && s.last <= l.lastSnap.cut {
			retirable += s.bytes
		}
	}
	if retirable < l.opt.CheckpointBytes {
		return nil
	}
	ck := l.lastSnap
	l.lastSnap = nil
	return ck
}

// openSegment rotates to a fresh segment whose first record is seq. The
// directory entry is synced before any record lands in the file, so a
// record's own fsync is the last durability step before its commit
// returns.
func (l *Log) openSegment(seq uint64) error {
	if l.active != nil {
		closedSeg := segment{name: l.activeName, first: l.activeFirst, last: l.activeLast, bytes: l.activeBytes}
		err := l.active.Close()
		l.active = nil
		if err != nil {
			return err
		}
		l.mu.Lock()
		l.segs = append(l.segs, closedSeg)
		l.mu.Unlock()
	}
	name := segName(l.dir, seq)
	f, err := l.fs.Create(name)
	if err != nil {
		return err
	}
	hdr := make([]byte, segHeaderLen)
	copy(hdr, segMagic)
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.active = f
	l.mu.Lock()
	l.activeName = name
	l.activeFirst = seq
	l.activeLast = 0
	l.activeBytes = segHeaderLen
	l.mu.Unlock()
	return nil
}

// fail poisons the log: a write or fsync error means records may be lost,
// so every later Admit/Append/commit reports it rather than pretending to
// be durable. The sticky error wraps ErrFailed so callers can classify it
// without string matching.
func (l *Log) fail(err error) {
	l.mu.Lock()
	if l.failed == nil {
		l.failed = fmt.Errorf("%w: %w", ErrFailed, err)
	}
	l.commitCond.Broadcast()
	l.admitCond.Broadcast()
	l.mu.Unlock()
}

// Close flushes and fsyncs everything buffered, stops the syncer, and
// closes the active segment. Callers should quiesce writers first:
// records appended concurrently with Close may be reported ErrClosed.
func (l *Log) Close() error {
	l.stopOnce.Do(func() { close(l.done) })
	l.wg.Wait()
	l.flush()
	l.mu.Lock()
	if l.closed {
		err := l.failed
		l.mu.Unlock()
		return err
	}
	l.closed = true
	err := l.failed
	active := l.active
	l.active = nil
	l.commitCond.Broadcast()
	l.admitCond.Broadcast()
	l.mu.Unlock()
	if active != nil {
		if cerr := active.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Kill crash-stops the log: no final flush, no fsync — buffered records
// die exactly as they would in a process crash. In-flight and later
// commits report ErrKilled. Tests use Kill plus a reopen of the same
// directory to exercise recovery in-process.
func (l *Log) Kill() {
	l.stopOnce.Do(func() { close(l.done) })
	l.wg.Wait()
	l.mu.Lock()
	l.closed = true
	if l.failed == nil {
		l.failed = ErrKilled
	}
	active := l.active
	l.active = nil
	l.commitCond.Broadcast()
	l.admitCond.Broadcast()
	l.mu.Unlock()
	if active != nil {
		active.Close()
	}
}

// Stats is a point-in-time gauge of the log (GET /stats).
type Stats struct {
	Dir            string
	LastSeq        uint64 // last assigned sequence
	SyncedSeq      uint64 // durable frontier
	RetiredCut     uint64 // last synced maintenance boundary's cut
	RetiredApplied uint64 // that boundary's applied counter
	CheckpointSeq  uint64 // newest durable checkpoint's cut (0: none)

	UnsyncedBytes    int // buffered, not yet fsynced
	UnappliedRecords int // records a recovery right now would replay
	UnappliedBytes   int
	Segments         int   // segment files, including the active one
	DiskBytes        int64 // segments + checkpoint

	Appends     uint64
	Boundaries  uint64
	Syncs       uint64
	Checkpoints uint64
	Compactions uint64 // compaction passes (each drops ≥1 retired segment)
	Stalls      uint64 // Admit calls that blocked on a depth bound

	MeanSyncMillis float64
	MaxSyncMillis  float64
	P99SyncMillis  float64 // over the last 256 syncs

	LastError string // sticky failure, "" while healthy
}

// Stats returns current gauges and counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := Stats{
		Dir:              l.dir,
		LastSeq:          l.seq,
		SyncedSeq:        l.syncedSeq,
		RetiredCut:       l.retiredCut,
		RetiredApplied:   l.retiredApplied,
		CheckpointSeq:    l.ckptCut,
		UnsyncedBytes:    l.unsynced,
		UnappliedRecords: len(l.unapplied),
		UnappliedBytes:   l.unappliedBytes,
		Appends:          l.appends,
		Boundaries:       l.boundaries,
		Syncs:            l.syncs,
		Checkpoints:      l.checkpoints,
		Compactions:      l.compactions,
		Stalls:           l.stalls,
	}
	for _, seg := range l.segs {
		s.DiskBytes += int64(seg.bytes)
	}
	s.Segments = len(l.segs)
	// The active-file handle is syncer-owned; gauge it via the mu-guarded
	// metadata only.
	if l.activeBytes > 0 {
		s.Segments++
		s.DiskBytes += int64(l.activeBytes)
	}
	s.DiskBytes += int64(l.ckptBytes)
	if l.syncs > 0 {
		s.MeanSyncMillis = float64(l.syncTotal.Microseconds()) / float64(l.syncs) / 1000
		s.MaxSyncMillis = float64(l.syncMax.Microseconds()) / 1000
	}
	n := int(l.syncRingN)
	if n > len(l.syncRing) {
		n = len(l.syncRing)
	}
	if n > 0 {
		durs := make([]time.Duration, n)
		copy(durs, l.syncRing[:n])
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		idx := (n*99 + 99) / 100
		if idx > n {
			idx = n
		}
		s.P99SyncMillis = float64(durs[idx-1].Microseconds()) / 1000
	}
	if l.failed != nil {
		s.LastError = l.failed.Error()
	}
	return s
}
