package stats

import (
	"math"
	"math/rand"
)

// Zipf samples ranks {0..n-1} with probability P(i) ∝ 1/(i+1)^z over a
// finite domain. Unlike math/rand.Zipf it accepts any z ≥ 0 — the
// TPCD-Skew generator's skew knob is z ∈ {1,2,3,4} and z = 0 degenerates
// to uniform, matching the Chaudhuri–Narasayya generator the paper uses.
//
// Sampling is by binary search over the precomputed CDF: O(log n) per
// draw, O(n) memory.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a sampler over n ranks with exponent z. It panics when
// n ≤ 0 or z < 0 (generator misconfiguration).
func NewZipf(n int, z float64) *Zipf {
	if n <= 0 {
		panic("stats: Zipf needs n > 0")
	}
	if z < 0 {
		panic("stats: Zipf needs z >= 0")
	}
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / powZ(float64(i+1), z)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf}
}

// powZ is x^z with fast paths for the common integer exponents.
func powZ(x, z float64) float64 {
	switch z {
	case 0:
		return 1
	case 1:
		return x
	case 2:
		return x * x
	case 3:
		return x * x * x
	case 4:
		x2 := x * x
		return x2 * x2
	}
	// math.Pow for fractional exponents.
	return pow(x, z)
}

// N returns the domain size.
func (zf *Zipf) N() int { return len(zf.cdf) }

// Rank draws a rank in [0, n) using rng.
func (zf *Zipf) Rank(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(zf.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if zf.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability of rank i.
func (zf *Zipf) Prob(i int) float64 {
	if i == 0 {
		return zf.cdf[0]
	}
	return zf.cdf[i] - zf.cdf[i-1]
}

// pow is math.Pow, isolated so powZ's fast paths stay visible.
func pow(x, z float64) float64 { return math.Pow(x, z) }
