package relation

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a schema.
type Column struct {
	// Name is the attribute name. Names are case-sensitive and must be
	// unique within a schema.
	Name string
	// Type is the declared kind. Values of KindNull are accepted in any
	// column (SQL NULL); otherwise inserted values must match the type.
	Type Kind
}

// Schema describes the attributes of a relation and which of them form the
// primary key (paper Section 3.1: every base relation has a primary key, and
// Definition 2 derives one for every node of an expression tree).
type Schema struct {
	cols   []Column
	key    []int // indexes into cols; ordered
	byName map[string]int
}

// NewSchema builds a schema from columns and the names of the primary-key
// attributes. It panics on duplicate column names or unknown key names:
// schemas are built by code, not data, so a malformed schema is a programmer
// error.
func NewSchema(cols []Column, key ...string) Schema {
	s := Schema{cols: append([]Column(nil), cols...), byName: make(map[string]int, len(cols))}
	for i, c := range s.cols {
		if c.Name == "" {
			panic("relation: empty column name")
		}
		if _, dup := s.byName[c.Name]; dup {
			panic(fmt.Sprintf("relation: duplicate column %q", c.Name))
		}
		s.byName[c.Name] = i
	}
	for _, k := range key {
		i, ok := s.byName[k]
		if !ok {
			panic(fmt.Sprintf("relation: key column %q not in schema", k))
		}
		s.key = append(s.key, i)
	}
	return s
}

// Cols returns a copy of the column list.
func (s Schema) Cols() []Column { return append([]Column(nil), s.cols...) }

// NumCols reports the number of attributes.
func (s Schema) NumCols() int { return len(s.cols) }

// Col returns the i-th column.
func (s Schema) Col(i int) Column { return s.cols[i] }

// ColIndex returns the index of the named column, or -1 if absent.
func (s Schema) ColIndex(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// HasCol reports whether the named column exists.
func (s Schema) HasCol(name string) bool { return s.ColIndex(name) >= 0 }

// Key returns a copy of the primary-key column indexes.
func (s Schema) Key() []int { return append([]int(nil), s.key...) }

// KeyNames returns the primary-key attribute names in key order.
func (s Schema) KeyNames() []string {
	names := make([]string, len(s.key))
	for i, k := range s.key {
		names[i] = s.cols[k].Name
	}
	return names
}

// HasKey reports whether a primary key is defined.
func (s Schema) HasKey() bool { return len(s.key) > 0 }

// WithKey returns a copy of the schema re-keyed on the named attributes.
func (s Schema) WithKey(key ...string) Schema {
	return NewSchema(s.cols, key...)
}

// Names returns all attribute names in order.
func (s Schema) Names() []string {
	names := make([]string, len(s.cols))
	for i, c := range s.cols {
		names[i] = c.Name
	}
	return names
}

// Equal reports whether two schemas have identical columns and keys.
func (s Schema) Equal(o Schema) bool {
	if len(s.cols) != len(o.cols) || len(s.key) != len(o.key) {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != o.cols[i] {
			return false
		}
	}
	for i := range s.key {
		if s.key[i] != o.key[i] {
			return false
		}
	}
	return true
}

// Compatible reports whether two schemas are union-compatible: same column
// count, names and types in order (keys may differ).
func (s Schema) Compatible(o Schema) bool {
	if len(s.cols) != len(o.cols) {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != o.cols[i] {
			return false
		}
	}
	return true
}

// Rename returns a schema with every column renamed via fn, preserving the
// key structure.
func (s Schema) Rename(fn func(string) string) Schema {
	cols := make([]Column, len(s.cols))
	for i, c := range s.cols {
		cols[i] = Column{Name: fn(c.Name), Type: c.Type}
	}
	key := make([]string, len(s.key))
	for i, k := range s.key {
		key[i] = cols[k].Name
	}
	return NewSchema(cols, key...)
}

// String renders the schema as "name:type, ... KEY(a,b)".
func (s Schema) String() string {
	var b strings.Builder
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%s", c.Name, c.Type)
	}
	if len(s.key) > 0 {
		fmt.Fprintf(&b, " KEY(%s)", strings.Join(s.KeyNames(), ","))
	}
	return b.String()
}
