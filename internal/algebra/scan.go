package algebra

import (
	"fmt"

	"github.com/sampleclean/svc/internal/relation"
)

// ScanNode reads a named relation from the evaluation context. It is the
// leaf of every expression tree; base tables, delta relations (ΔR, ∇R) and
// the stale view itself are all bound into the context under conventional
// names by the db and view layers.
type ScanNode struct {
	name   string
	schema relation.Schema
}

// Scan returns a leaf that reads the named relation, declaring its schema.
// The declared schema (including primary key) is checked against the bound
// relation at evaluation time.
func Scan(name string, schema relation.Schema) *ScanNode {
	return &ScanNode{name: name, schema: schema}
}

// Name returns the context binding this scan reads.
func (s *ScanNode) Name() string { return s.name }

// Schema implements Node.
func (s *ScanNode) Schema() relation.Schema { return s.schema }

// Eval implements Node.
func (s *ScanNode) Eval(ctx *Context) (*relation.Relation, error) {
	rel, err := ctx.Relation(s.name)
	if err != nil {
		return nil, err
	}
	if !rel.Schema().Compatible(s.schema) {
		return nil, fmt.Errorf("algebra: scan %q: bound schema [%s] incompatible with declared [%s]",
			s.name, rel.Schema(), s.schema)
	}
	if rel.Schema().Equal(s.schema) {
		// Operators never mutate their inputs, so the bound relation can
		// be shared without copying. Reads are charged by the consuming
		// operator (an index probe may touch only a few rows).
		return rel, nil
	}
	ctx.RowsTouched += int64(rel.Len())
	// The declared key may deliberately differ from the stored one (e.g. a
	// keyless bag view of a keyed table); rebuild under the declared schema.
	out := relation.New(s.schema)
	for _, row := range rel.Rows() {
		if err := out.Insert(row); err != nil {
			return nil, fmt.Errorf("algebra: scan %q: %w", s.name, err)
		}
	}
	return out, nil
}

// Children implements Node.
func (s *ScanNode) Children() []Node { return nil }

// WithChildren implements Node.
func (s *ScanNode) WithChildren(ch []Node) Node {
	if len(ch) != 0 {
		panic("algebra: Scan takes no children")
	}
	return s
}

// String implements Node.
func (s *ScanNode) String() string { return fmt.Sprintf("Scan(%s)", s.name) }
