package relation

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null(), KindNull, "NULL"},
		{Int(42), KindInt, "42"},
		{Int(-7), KindInt, "-7"},
		{Float(2.5), KindFloat, "2.5"},
		{String("abc"), KindString, "abc"},
		{Bool(true), KindBool, "true"},
		{Bool(false), KindBool, "false"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("String() = %q, want %q", c.v.String(), c.str)
		}
	}
}

func TestValueZeroIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value should be NULL")
	}
}

func TestValueConversions(t *testing.T) {
	if got := Int(3).AsFloat(); got != 3.0 {
		t.Errorf("Int(3).AsFloat() = %v", got)
	}
	if got := Float(3.9).AsInt(); got != 3 {
		t.Errorf("Float(3.9).AsInt() = %v", got)
	}
	if got := Bool(true).AsInt(); got != 1 {
		t.Errorf("Bool(true).AsInt() = %v", got)
	}
	if Null().AsBool() {
		t.Error("NULL should not be truthy")
	}
	if !Int(5).AsBool() || Int(0).AsBool() {
		t.Error("int truthiness wrong")
	}
	if got := String("x").AsString(); got != "x" {
		t.Errorf("AsString = %q", got)
	}
	if got := Int(9).AsString(); got != "9" {
		t.Errorf("Int AsString = %q", got)
	}
}

func TestValueEqual(t *testing.T) {
	if !Int(2).Equal(Float(2.0)) {
		t.Error("cross-numeric equality should hold")
	}
	if Int(2).Equal(String("2")) {
		t.Error("int should not equal string")
	}
	if !Null().Equal(Null()) {
		t.Error("NULL row-identity equality should hold")
	}
	if Null().Equal(Int(0)) {
		t.Error("NULL != 0")
	}
	if !String("a").Equal(String("a")) || String("a").Equal(String("b")) {
		t.Error("string equality wrong")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Float(2.5), Int(2), 1},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Null(), Null(), 0},
		{String("a"), String("b"), -1},
		{String("b"), String("b"), 0},
		{Int(1), String("a"), -1}, // kind order: numeric kinds < string
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueArithmetic(t *testing.T) {
	if got := Int(2).Add(Int(3)); !got.Equal(Int(5)) {
		t.Errorf("2+3 = %v", got)
	}
	if got := Int(2).Add(Float(0.5)); !got.Equal(Float(2.5)) {
		t.Errorf("2+0.5 = %v", got)
	}
	if got := Int(7).Sub(Int(2)); !got.Equal(Int(5)) {
		t.Errorf("7-2 = %v", got)
	}
	if got := Int(4).Mul(Int(3)); !got.Equal(Int(12)) {
		t.Errorf("4*3 = %v", got)
	}
	if got := Int(7).Div(Int(2)); !got.Equal(Float(3.5)) {
		t.Errorf("7/2 = %v", got)
	}
	if got := Int(1).Div(Int(0)); !got.IsNull() {
		t.Errorf("1/0 = %v, want NULL", got)
	}
	if got := Null().Add(Int(1)); !got.IsNull() {
		t.Errorf("NULL+1 = %v, want NULL", got)
	}
}

func TestEncodeDistinguishesKinds(t *testing.T) {
	vals := []Value{
		Null(), Int(0), Float(0), String(""), Bool(false),
		Int(1), Float(1), String("1"), Bool(true),
	}
	for i := range vals {
		for j := range vals {
			a, b := vals[i].Encode(), vals[j].Encode()
			if i == j {
				if !bytes.Equal(a, b) {
					t.Errorf("Encode(%v) not deterministic", vals[i])
				}
			} else if bytes.Equal(a, b) {
				t.Errorf("Encode(%v) == Encode(%v)", vals[i], vals[j])
			}
		}
	}
}

// Property: string encoding is injective even with NUL and escape bytes.
func TestEncodeStringInjective(t *testing.T) {
	f := func(a, b string) bool {
		ea, eb := String(a).Encode(), String(b).Encode()
		return (a == b) == bytes.Equal(ea, eb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: composite key encoding is unambiguous — the pair (a,b) never
// collides with a different pair (c,d) even when string payloads contain
// delimiter bytes.
func TestCompositeKeyInjective(t *testing.T) {
	f := func(a, b, c, d string) bool {
		k1 := Row{String(a), String(b)}.KeyOf([]int{0, 1})
		k2 := Row{String(c), String(d)}.KeyOf([]int{0, 1})
		return (a == c && b == d) == (k1 == k2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: int encoding is injective.
func TestEncodeIntInjective(t *testing.T) {
	f := func(a, b int64) bool {
		return (a == b) == bytes.Equal(Int(a).Encode(), Int(b).Encode())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: float encoding is injective over bit patterns.
func TestEncodeFloatInjective(t *testing.T) {
	f := func(a, b float64) bool {
		same := math.Float64bits(a) == math.Float64bits(b)
		return same == bytes.Equal(Float(a).Encode(), Float(b).Encode())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Int(a).Compare(Int(b)) == -Int(b).Compare(Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
