package tpcd

// The workload's svcql texts. views.go builds the paper's views as algebra
// trees directly; these are the same definitions written in the dialect,
// used by the svcd daemon (views created from the wire) and by the
// end-to-end parse→plan→pipeline tests, which compare what the planned SQL
// produces against both evaluation engines.

// JoinViewSQL is the Section 7.2 lineitem⋈orders join view in svcql text.
// The dialect has no SELECT *, so every column is listed; the join keeps
// both key columns (no USING merge), so the planned view carries
// o_orderkey alongside l_orderkey — same rows, one redundant key column
// more than the hand-built JoinView.
const JoinViewSQL = `CREATE VIEW joinView AS
SELECT l_orderkey, l_linenumber, l_partkey, l_suppkey, l_quantity,
       l_extendedprice, l_discount, l_returnflag, l_shipdate,
       o_orderkey, o_custkey, o_orderstatus, o_totalprice, o_orderdate,
       o_orderpriority
FROM lineitem JOIN orders ON l_orderkey = o_orderkey`

// revenueSQL is Revenue() in the dialect.
const revenueSQL = `l_extendedprice * (1 - l_discount)`

// ViewSQL returns svcql CREATE VIEW texts for the complex views
// expressible in the dialect, keyed by view name. V21 (nested aggregate)
// and V22 (substr group key) are deliberately absent: the dialect has
// neither subqueries nor string functions, exactly the shapes the paper
// uses to defeat hash push-down.
func ViewSQL() map[string]string {
	return map[string]string{
		"V3": `CREATE VIEW V3 AS
SELECT l_orderkey, COUNT(1) AS cnt, SUM(` + revenueSQL + `) AS revenue
FROM lineitem JOIN orders ON l_orderkey = o_orderkey
WHERE o_orderdate < 270
GROUP BY l_orderkey`,
		"V4": `CREATE VIEW V4 AS
SELECT o_orderpriority, COUNT(1) AS cnt, SUM(l_quantity) AS totalQty
FROM lineitem JOIN orders ON l_orderkey = o_orderkey
WHERE o_orderdate < 270
GROUP BY o_orderpriority`,
		"V5": `CREATE VIEW V5 AS
SELECT n_nationkey, o_orderdate, COUNT(1) AS cnt, SUM(` + revenueSQL + `) AS revenue
FROM lineitem
JOIN orders ON l_orderkey = o_orderkey
JOIN customer ON o_custkey = c_custkey
JOIN nation ON c_nationkey = n_nationkey
GROUP BY n_nationkey, o_orderdate`,
		"V9": `CREATE VIEW V9 AS
SELECT s_nationkey, o_orderdate, COUNT(1) AS cnt, SUM(` + revenueSQL + `) AS profit
FROM lineitem
JOIN orders ON l_orderkey = o_orderkey
JOIN supplier ON l_suppkey = s_suppkey
GROUP BY s_nationkey, o_orderdate`,
		"V10": `CREATE VIEW V10 AS
SELECT c_custkey, COUNT(1) AS cnt, SUM(` + revenueSQL + `) AS revenue
FROM lineitem
JOIN orders ON l_orderkey = o_orderkey
JOIN customer ON o_custkey = c_custkey
WHERE l_returnflag = 1
GROUP BY c_custkey`,
		"V13": `CREATE VIEW V13 AS
SELECT o_custkey, COUNT(1) AS orderCount, SUM(o_totalprice) AS totalSpend
FROM orders
GROUP BY o_custkey`,
		"V15i": `CREATE VIEW V15i AS
SELECT l_suppkey, COUNT(1) AS cnt, SUM(` + revenueSQL + `) AS totalRevenue
FROM lineitem
WHERE l_shipdate >= 90 AND l_shipdate < 180
GROUP BY l_suppkey`,
		"V18": `CREATE VIEW V18 AS
SELECT l_orderkey, COUNT(1) AS cnt, SUM(l_quantity) AS totalQty
FROM lineitem
GROUP BY l_orderkey`,
	}
}

// JoinViewQuerySQL returns the 12 Figure 5 queries as svcql text against
// the join view, index-aligned with JoinViewQueries(). Q19 spells its
// range as BETWEEN, which the parser desugars to the same ≥/≤ pair the
// hand-built query uses.
func JoinViewQuerySQL() []string {
	return []string{
		`SELECT o_orderdate, SUM(l_extendedprice) FROM joinView WHERE o_orderdate < 180 GROUP BY o_orderdate`,
		`SELECT o_orderpriority, COUNT(1) FROM joinView WHERE o_orderdate < 270 GROUP BY o_orderpriority`,
		`SELECT o_orderstatus, SUM(l_extendedprice) FROM joinView GROUP BY o_orderstatus`,
		`SELECT l_returnflag, SUM(l_extendedprice) FROM joinView WHERE l_shipdate >= 90 GROUP BY l_returnflag`,
		`SELECT o_orderpriority, AVG(l_extendedprice) FROM joinView GROUP BY o_orderpriority`,
		`SELECT l_suppkey, SUM(l_extendedprice) FROM joinView GROUP BY l_suppkey`,
		`SELECT l_returnflag, SUM(l_extendedprice) FROM joinView WHERE l_returnflag = 1 GROUP BY l_returnflag`,
		`SELECT o_orderpriority, COUNT(1) FROM joinView WHERE l_shipdate >= 180 GROUP BY o_orderpriority`,
		`SELECT l_returnflag, SUM(l_extendedprice) FROM joinView WHERE l_shipdate >= 120 AND l_shipdate < 150 GROUP BY l_returnflag`,
		`SELECT o_custkey, SUM(l_quantity) FROM joinView GROUP BY o_custkey`,
		`SELECT l_returnflag, SUM(l_extendedprice) FROM joinView WHERE l_quantity BETWEEN 10 AND 30 GROUP BY l_returnflag`,
		`SELECT o_orderstatus, COUNT(1) FROM joinView WHERE l_quantity > 25 GROUP BY o_orderstatus`,
	}
}
