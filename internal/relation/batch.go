package relation

import "sync"

// BatchCap is the fixed row capacity of a pipeline batch. 1024 rows keeps a
// batch's row headers (and one operator's worth of output values) well
// inside the L2 cache while amortizing per-batch overhead over enough rows
// that the iterator protocol is invisible in profiles.
const BatchCap = 1024

// Batch is the unit of data flow in the batched execution pipeline
// (internal/algebra): a fixed-capacity chunk of rows pulled from operator
// to operator. Producers either append row *headers* that alias storage
// owned elsewhere (a scan aliasing its relation's rows) or build fresh
// rows inside the batch's value arena (a projection computing new rows).
// The Owned flag records which: rows of an owned batch live in the arena
// and die with it, rows of an unowned batch outlive the batch.
//
// Ownership protocol (see DESIGN.md "Batch pipeline execution"):
//
//   - the consumer that pulled a batch owns it and must either pass it
//     downstream, Release it, or drop it;
//   - Release recycles the batch (and its arena) through a pool — callers
//     must not retain any Row of an *owned* batch past Release;
//   - a consumer retaining row headers from an owned batch simply skips
//     Release (ReleaseUnlessOwned) and lets the GC keep the arena alive.
//
// A Batch is not safe for concurrent use; pipelines hand each batch to one
// goroutine at a time.
type Batch struct {
	rows   []Row
	arena  []Value
	owned  bool
	pinned bool
}

// batchPool recycles released batches. Steady-state pipelines allocate no
// batches at all: every GetBatch after warm-up reuses a released one,
// including its grown rows and arena capacity.
var batchPool = sync.Pool{New: func() any { return new(Batch) }}

// GetBatch returns an empty batch from the pool.
func GetBatch() *Batch {
	b := batchPool.Get().(*Batch)
	b.owned = false
	b.pinned = false
	return b
}

// Release resets the batch and returns it to the pool. The caller must not
// use the batch, or any arena-backed row obtained from it, afterwards.
// Releasing a pinned batch is a no-op: an upstream operator retained rows
// from it and the GC, not the pool, reclaims it.
func (b *Batch) Release() {
	if b.pinned {
		return
	}
	b.rows = b.rows[:0]
	b.arena = b.arena[:0]
	b.owned = false
	batchPool.Put(b)
}

// Pin marks the batch as un-recyclable: a later Release becomes a no-op.
// An operator that retains row headers from a batch it must also pass
// downstream (the keyed union recording its left input) pins it so the
// downstream consumer's Release cannot recycle the retained rows' arena.
func (b *Batch) Pin() { b.pinned = true }

// ReleaseUnlessOwned releases the batch only when its rows alias external
// storage — the correct call for consumers that retain row headers (a
// drain collecting rows, a set operator recording its left input). Owned
// batches are dropped instead: the retained rows keep the arena alive and
// the GC reclaims it when they go.
func (b *Batch) ReleaseUnlessOwned() {
	if !b.owned {
		b.Release()
	}
}

// Owned reports whether the batch's rows are backed by its own arena.
func (b *Batch) Owned() bool { return b.owned }

// Len reports the number of rows in the batch.
func (b *Batch) Len() int { return len(b.rows) }

// Full reports whether the batch reached BatchCap rows.
func (b *Batch) Full() bool { return len(b.rows) >= BatchCap }

// Rows returns the batch's row slice. Callers may reorder or truncate it
// via Truncate (in-place filtering) but must not grow it directly.
func (b *Batch) Rows() []Row { return b.rows }

// Row returns the i-th row.
func (b *Batch) Row(i int) Row { return b.rows[i] }

// Append adds a row header that aliases storage owned elsewhere. It must
// not be mixed with Alloc in the same batch (the batch would be partially
// arena-backed and the Owned flag could not be truthful).
func (b *Batch) Append(r Row) { b.rows = append(b.rows, r) }

// AppendRows appends a slice of row headers (see Append).
func (b *Batch) AppendRows(rows []Row) { b.rows = append(b.rows, rows...) }

// Truncate keeps the first n rows — the tail of an in-place filter pass.
func (b *Batch) Truncate(n int) { b.rows = b.rows[:n] }

// Alloc appends and returns a fresh row of the given width, backed by the
// batch arena, and marks the batch owned. The row's values are
// UNINITIALIZED (possibly stale from a previous pool cycle) — the caller
// must assign every slot.
//
// The arena grows in slabs: when the current slab is full a larger one is
// allocated WITHOUT copying, so rows already handed out keep aliasing the
// old slab (rows are append-only once returned). Slab growth doubles up to
// one BatchCap-rows slab, which the pool then reuses across batches; small
// batches that are retained rather than released only ever pay for a small
// slab.
func (b *Batch) Alloc(width int) Row {
	b.owned = true
	if len(b.arena)+width > cap(b.arena) {
		need := 2 * cap(b.arena)
		if min := 16 * width; need < min {
			need = min
		}
		if max := BatchCap * width; need > max {
			need = max
		}
		if need < width {
			need = width
		}
		b.arena = make([]Value, 0, need)
	}
	start := len(b.arena)
	b.arena = b.arena[: start+width : cap(b.arena)]
	row := Row(b.arena[start : start+width : start+width])
	b.rows = append(b.rows, row)
	return row
}
