package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestMoments(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	almost(t, "mean", Mean(xs), 2.5, 1e-12)
	almost(t, "variance", Variance(xs), 1.25, 1e-12)
	almost(t, "stdev", Stdev(xs), math.Sqrt(1.25), 1e-12)
	almost(t, "sum", Sum(xs), 10, 1e-12)
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty moments should be 0")
	}
}

func TestCovariance(t *testing.T) {
	xs := []float64{1, 2, 3}
	almost(t, "cov(x,x)", Covariance(xs, xs), Variance(xs), 1e-12)
	ys := []float64{3, 2, 1}
	almost(t, "cov(x,-x)", Covariance(xs, ys), -Variance(xs), 1e-12)
	if Covariance(xs, []float64{1}) != 0 {
		t.Error("mismatched lengths should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	almost(t, "median", Median(xs), 2.5, 1e-12)
	almost(t, "q0", Quantile(xs, 0), 1, 1e-12)
	almost(t, "q1", Quantile(xs, 1), 4, 1e-12)
	almost(t, "q0.25", Quantile(xs, 0.25), 1.75, 1e-12)
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	almost(t, "single", Quantile([]float64{7}, 0.3), 7, 1e-12)
}

func TestNormalQuantile(t *testing.T) {
	almost(t, "z(0.975)", NormalQuantile(0.975), 1.959964, 1e-4)
	almost(t, "z(0.995)", NormalQuantile(0.995), 2.575829, 1e-4)
	almost(t, "z(0.5)", NormalQuantile(0.5), 0, 1e-12)
	almost(t, "gamma(0.95)", GammaForConfidence(0.95), 1.959964, 1e-4)
	almost(t, "gamma(0.99)", GammaForConfidence(0.99), 2.575829, 1e-4)
}

func TestCantelli(t *testing.T) {
	// var=1, eps=3: P ≤ 1/(1+9) = 0.1
	almost(t, "cantelli", CantelliUpper(1, 3), 0.1, 1e-12)
	if CantelliUpper(1, 0) != 1 {
		t.Error("eps<=0 should give trivial bound 1")
	}
}

func TestBootstrapCoversTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Sample from a known distribution; the bootstrap CI for the mean
	// should cover the sample mean (always) and usually the true mean.
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()*2 + 10
	}
	lo, hi, err := Bootstrap(rng, xs, 400, Mean, 0.025, 0.975)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= hi {
		t.Fatalf("degenerate interval [%v,%v]", lo, hi)
	}
	m := Mean(xs)
	if m < lo || m > hi {
		t.Errorf("sample mean %v outside bootstrap CI [%v,%v]", m, lo, hi)
	}
	if hi-lo > 1.0 {
		t.Errorf("CI too wide: [%v,%v]", lo, hi)
	}
	if _, _, err := Bootstrap(rng, nil, 10, Mean, 0.025, 0.975); err == nil {
		t.Error("empty bootstrap should fail")
	}
	if _, _, err := Bootstrap(rng, xs, 0, Mean, 0.025, 0.975); err == nil {
		t.Error("zero iterations should fail")
	}
}

func TestBootstrapPaired(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 300
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 5
		ys[i] = xs[i] + 1 + rng.NormFloat64()*0.1 // strongly correlated, diff ≈ 1
	}
	diff := func(a, b []float64) float64 { return Mean(b) - Mean(a) }
	lo, hi, err := BootstrapPaired(rng, xs, ys, 400, diff, 0.025, 0.975)
	if err != nil {
		t.Fatal(err)
	}
	if lo > 1 || hi < 1 {
		t.Errorf("paired CI [%v,%v] should cover 1", lo, hi)
	}
	// Pairing matters: the interval must be narrow despite var(x) being
	// large, because the difference has tiny variance.
	if hi-lo > 0.1 {
		t.Errorf("paired CI too wide: [%v,%v]", lo, hi)
	}
	if _, _, err := BootstrapPaired(rng, xs, ys[:10], 10, diff, 0.025, 0.975); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestZipfDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(100, 2)
	counts := make([]int, 100)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Rank(rng)]++
	}
	// Empirical frequencies track the analytic probabilities for the head.
	for i := 0; i < 5; i++ {
		got := float64(counts[i]) / draws
		want := z.Prob(i)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("rank %d: freq %v, want %v", i, got, want)
		}
	}
	// Monotone head.
	if !(counts[0] > counts[1] && counts[1] > counts[2]) {
		t.Errorf("head not monotone: %v", counts[:5])
	}
}

func TestZipfUniformAtZeroExponent(t *testing.T) {
	z := NewZipf(50, 0)
	for i := 0; i < 50; i++ {
		almost(t, "prob", z.Prob(i), 1.0/50, 1e-9)
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	// Larger z concentrates more mass on rank 0.
	prev := 0.0
	for _, zv := range []float64{0, 1, 2, 3, 4} {
		p0 := NewZipf(1000, zv).Prob(0)
		if p0 <= prev {
			t.Errorf("P(rank 0) should grow with z: z=%v gives %v (prev %v)", zv, p0, prev)
		}
		prev = p0
	}
}

func TestZipfPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"n=0": func() { NewZipf(0, 1) },
		"z<0": func() { NewZipf(10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: quantile is monotone in p and bounded by min/max.
func TestQuantileMonotoneQuick(t *testing.T) {
	f := func(raw []float64, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		a := float64(aRaw) / 255
		b := float64(bRaw) / 255
		if a > b {
			a, b = b, a
		}
		qa, qb := Quantile(raw, a), Quantile(raw, b)
		lo, hi := Quantile(raw, 0), Quantile(raw, 1)
		return qa <= qb+1e-9 && qa >= lo-1e-9 && qb <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: variance is translation-invariant and scales quadratically.
func TestVariancePropertiesQuick(t *testing.T) {
	f := func(raw []float64, shift float64) bool {
		if len(raw) == 0 || math.IsNaN(shift) || math.IsInf(shift, 0) {
			return true
		}
		clean := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true
			}
			clean = append(clean, x)
		}
		if math.Abs(shift) > 1e6 {
			return true
		}
		v := Variance(clean)
		shifted := make([]float64, len(clean))
		scaled := make([]float64, len(clean))
		for i, x := range clean {
			shifted[i] = x + shift
			scaled[i] = 2 * x
		}
		tol := 1e-6 * (1 + v)
		return math.Abs(Variance(shifted)-v) < tol && math.Abs(Variance(scaled)-4*v) < 4*tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
