package bench

import (
	"fmt"
	"math"
	"strings"

	"github.com/sampleclean/svc/internal/minibatch"
)

func init() {
	register("fig14a", "mini-batch: throughput vs batch size (single maintenance thread)", fig14a)
	register("fig14b", "mini-batch: throughput vs batch size with a concurrent SVC thread", fig14b)
	register("fig15", "mini-batch: max error vs sampling ratio at fixed throughput (V2, V5)", fig15)
	register("fig16", "mini-batch: CPU utilization trace — IVM vs IVM+SVC", fig16)
}

func batchCandidates() []float64 {
	return []float64{1e6, 2e6, 5e6, 1e7, 2e7, 5e7, 1e8, 2e8}
}

func fig14a(Scale) (*Table, error) {
	c := minibatch.DefaultCluster()
	t := &Table{ID: "fig14a", Title: "Simulated cluster: throughput vs batch size (records/s)",
		Header: []string{"batch_records", "throughput"}}
	for _, b := range batchCandidates() {
		t.AddRow(fmt.Sprintf("%.0e", b), c.Throughput(b))
	}
	t.Notes = append(t.Notes, "paper Figure 14a: throughput for small batches ≈10x below large batches")
	return t, nil
}

func fig14b(Scale) (*Table, error) {
	c := minibatch.DefaultCluster()
	t := &Table{ID: "fig14b", Title: "Simulated cluster: throughput with concurrent SVC thread (m=10%)",
		Header: []string{"batch_records", "one_thread", "two_threads", "reduction"}}
	for _, b := range batchCandidates() {
		one := c.Throughput(b)
		two := c.ThroughputTwoThreads(b, 0.10)
		t.AddRow(fmt.Sprintf("%.0e", b), one, two, one/two)
	}
	t.Notes = append(t.Notes, "paper Figure 14b: two threads halve small-batch throughput; large batches barely affected")
	return t, nil
}

func fig15(Scale) (*Table, error) {
	c := minibatch.DefaultCluster()
	t := &Table{ID: "fig15", Title: "Max error in a maintenance period vs sampling ratio (fixed throughput)",
		Header: []string{"ratio", "V2_ivm+svc", "V2_ivm_only", "V5_ivm+svc", "V5_ivm_only"}}
	target := 0.55 * c.RecordRate * float64(c.Workers)
	profiles := []minibatch.ViewProfile{minibatch.V2Profile(), minibatch.V5Profile()}
	ivmOnly := make([]float64, len(profiles))
	for i, p := range profiles {
		b, ok := c.SmallestBatchFor(target, false, 0, batchCandidates())
		if !ok {
			return nil, fmt.Errorf("fig15: no feasible IVM batch")
		}
		ivmOnly[i] = minibatch.MaxError(p, b, 0, 0)
	}
	best := make([]float64, len(profiles))
	bestM := make([]float64, len(profiles))
	for i := range best {
		best[i] = math.Inf(1)
	}
	for _, m := range []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.08, 0.10, 0.14, 0.18} {
		row := []interface{}{m}
		for i, p := range profiles {
			b, ok := c.SmallestBatchFor(target, true, m, batchCandidates())
			if !ok {
				row = append(row, "inf", ivmOnly[i])
				continue
			}
			e := minibatch.MaxError(p, b, m, c.SVCBatchFor(p, target, m))
			if e < best[i] {
				best[i], bestM[i] = e, m
			}
			row = append(row, e, ivmOnly[i])
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("optimal ratios: V2 at %.0f%%, V5 at %.0f%% (paper: 3%% and 6%%)", bestM[0]*100, bestM[1]*100),
		"paper Figure 15: IVM+SVC beats IVM alone at every plotted ratio")
	return t, nil
}

func fig16(Scale) (*Table, error) {
	c := minibatch.DefaultCluster()
	n := 5e7
	plain := c.UtilizationTrace(n, false, 0)
	svc := c.UtilizationTrace(n, true, 0.10)
	t := &Table{ID: "fig16", Title: "CPU utilization per second over one batch",
		Header: []string{"second", "ivm", "ivm+svc"}}
	meanP, meanS := 0.0, 0.0
	for i := range plain {
		t.AddRow(i, plain[i], svc[i])
		meanP += plain[i]
		meanS += svc[i]
	}
	meanP /= float64(len(plain))
	meanS /= float64(len(svc))
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean utilization: IVM %.0f%%, IVM+SVC %.0f%%", meanP*100, meanS*100),
		"paper Figure 16: SVC fills the idle windows left by synchronous shuffles",
		sparkline(plain), sparkline(svc))
	return t, nil
}

// sparkline renders a one-line utilization plot for quick visual
// comparison in terminal output.
func sparkline(xs []float64) string {
	marks := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, x := range xs {
		i := int(x * float64(len(marks)))
		if i >= len(marks) {
			i = len(marks) - 1
		}
		if i < 0 {
			i = 0
		}
		b.WriteRune(marks[i])
	}
	return b.String()
}
