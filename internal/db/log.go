package db

import (
	"fmt"
	"sync/atomic"

	"github.com/sampleclean/svc/internal/relation"
)

// DeltaOp identifies one logged catalog mutation, mirroring the Table
// mutators one-to-one.
type DeltaOp uint8

// Delta operations. OpDelete rows hold the key values only (the full old
// row lives in the base table and is re-derived on replay); the others
// hold the full row.
const (
	OpInsert DeltaOp = iota + 1 // StageInsert
	OpUpdate                    // StageUpdate
	OpDelete                    // StageDelete (row = key values)
	OpBase                      // direct base Insert
)

// DeltaLog is the catalog's durable-log attach point (package wal provides
// the implementation). The contract splits each write into a buffered
// append and a durability wait so the catalog's writer lock is never held
// across I/O:
//
//   - Admit is called with no locks held before a mutation; it may block
//     (backpressure) until the log drains below its depth bounds.
//   - Append is called under the catalog writer lock after the mutation
//     validated and applied; it must only buffer (no I/O) and returns a
//     commit func the mutator invokes after releasing the lock. Commit
//     blocks until the record is durable (group commit), so a staging call
//     that returns nil has its record on disk: acknowledged means durable.
//   - Boundary is called under the writer lock at the end of a successful
//     ApplyVersion with the new maintenance-boundary counter, the log
//     sequence cut the fold retired (every logged record with seq ≤ cut is
//     now folded into the base tables), and the just-published version —
//     an immutable snapshot the log may serialize into a checkpoint off
//     the lock. Same buffer/commit split as Append.
//   - SeqNow is called under the writer lock and returns the sequence
//     number of the last appended record, giving version builds a
//     consistent cut.
//
// The window between a mutation becoming visible (lock release) and its
// commit returning is the group-commit window: a crash inside it loses
// the record, but the caller never acknowledged it, so "lost" equals
// "never accepted". See internal/wal/doc.go for the full contract.
type DeltaLog interface {
	Admit() error
	Append(table string, op DeltaOp, row relation.Row) (commit func() error, err error)
	Boundary(applied, cut uint64, snap *Version) (commit func() error, err error)
	SeqNow() uint64
}

// deltaLogHolder wraps the interface so an atomic pointer can hold it.
type deltaLogHolder struct{ l DeltaLog }

// SetDeltaLog attaches (or, with nil, detaches) a durable log. Attach
// after recovery and before accepting writes: mutations staged while no
// log is attached are not recorded.
func (d *Database) SetDeltaLog(l DeltaLog) {
	if l == nil {
		d.dlog.Store(nil)
		return
	}
	d.dlog.Store(&deltaLogHolder{l: l})
}

// DeltaLog returns the attached durable log, or nil.
func (d *Database) DeltaLog() DeltaLog {
	if h := d.dlog.Load(); h != nil {
		return h.l
	}
	return nil
}

// loggedWrite is Table.write plus write-ahead logging: admit (no locks,
// may block on backpressure), mutate under the writer lock, buffer the
// log record while still holding it (so log order equals lock order),
// then wait for group commit after releasing it.
func (t *Table) loggedWrite(op DeltaOp, row relation.Row, fn func() error) error {
	lg := t.owner.DeltaLog()
	if lg == nil {
		return t.write(fn)
	}
	if err := lg.Admit(); err != nil {
		return err
	}
	var commit func() error
	t.owner.mu.Lock()
	err := fn()
	if err == nil {
		// The mutation is in: the published version must go stale even if
		// the append below fails (a poisoned log reports the error, but
		// readers still need to see the live state).
		t.owner.dirty.Store(true)
		t.changed = true
		commit, err = lg.Append(t.name, op, row)
	}
	t.owner.mu.Unlock()
	if err != nil {
		return err
	}
	return commit()
}

// RecoverStage re-stages one logged mutation during crash recovery. It is
// the relaxed-precondition counterpart of the Stage mutators: the strict
// preconditions (insert key must be new, update key must exist) were
// checked when the record was first accepted, but replay sees the base
// tables mid-stream — a maintenance boundary later in the log may already
// have folded a record's own earlier neighbors in, so an insert's key can
// exist by now and an update's key can be pending rather than applied.
// Each case maps onto the same ΔR/∇R shape ApplyVersion's retirement
// protocol produces for the equivalent live interleaving:
//
//   - OpInsert with the key already in base stages as an update (the base
//     row is the old version);
//   - OpUpdate with the key absent from base stages the new row only;
//   - OpDelete of a key in neither base nor ΔR is a no-op (its target was
//     un-staged by the same replay);
//   - OpBase upserts the base row directly.
//
// Callers must not have a DeltaLog attached (recovery precedes attach),
// so nothing is re-logged.
func (t *Table) RecoverStage(op DeltaOp, row relation.Row) error {
	return t.write(func() error {
		switch op {
		case OpInsert, OpUpdate:
			if !t.base.Schema().HasKey() {
				_, err := t.ins.Upsert(row)
				return err
			}
			k := row.KeyOf(t.base.Schema().Key())
			old, inBase := t.base.GetByEncodedKey(k)
			if _, err := t.ins.Upsert(row); err != nil {
				return err
			}
			if inBase {
				if _, exists := t.del.GetByEncodedKey(k); !exists {
					return t.del.Insert(old.Clone())
				}
			}
			return nil
		case OpDelete:
			k := relation.Row(row).KeyOf(intRange(len(row)))
			old, inBase := t.base.GetByEncodedKey(k)
			if !inBase {
				t.ins.DeleteByEncodedKey(k)
				return nil
			}
			if _, exists := t.del.GetByEncodedKey(k); !exists {
				if err := t.del.Insert(old.Clone()); err != nil {
					return err
				}
			}
			t.ins.DeleteByEncodedKey(k)
			return nil
		case OpBase:
			if _, err := t.base.Upsert(row); err != nil {
				return err
			}
			t.baseGen++
			return nil
		default:
			return fmt.Errorf("db: recover: unknown delta op %d", op)
		}
	})
}

// RecoverApply replays one logged maintenance boundary: fold everything
// currently staged into the base tables and force the boundary counter to
// the logged value, so the recovered catalog reports the same applied_seq
// the crashed process acknowledged.
func (d *Database) RecoverApply(applied uint64) error {
	err := d.ApplyDeltas()
	d.ForceAppliedSeq(applied)
	return err
}

// ForceAppliedSeq overrides the maintenance-boundary counter (checkpoint
// and boundary-record restore paths only).
func (d *Database) ForceAppliedSeq(n uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.applied = n
	d.dirty.Store(true)
	d.buildVersion()
}

// RestoreBase replaces the table's base content wholesale from a
// checkpoint image, clearing staged deltas and rebuilding registered
// indexes. The image's schema must match the table's.
func (t *Table) RestoreBase(rows *relation.Relation) error {
	return t.write(func() error {
		if !rows.Schema().Equal(t.base.Schema()) {
			return fmt.Errorf("db: restore %s: schema mismatch: have %s, checkpoint %s",
				t.name, t.base.Schema(), rows.Schema())
		}
		t.base = rows
		t.baseGen++
		t.clearDeltas()
		t.rebuildIndexes()
		return nil
	})
}

// Holder for the attached DeltaLog; lives here (not db.go) beside the
// rest of the logging seam.
type dlogField = atomic.Pointer[deltaLogHolder]
