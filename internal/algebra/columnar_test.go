package algebra

import (
	"testing"

	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
)

// Columnar ≡ row ≡ materialized: every operator shape from the pipeline
// plan table, unfused AND with scans fused by PushDownScans (the shape
// that actually engages the columnar path), must produce the
// materialized engine's rows with columnar on and off, serial and
// parallel.
func TestColumnarMatchesMaterialized(t *testing.T) {
	for name, plan := range pipelinePlans(t) {
		for _, fused := range []bool{false, true} {
			p := plan
			label := name
			if fused {
				p = PushDownScans(plan)
				label += "-fused"
			}
			t.Run(label, func(t *testing.T) {
				ref, err := EvalMaterialized(p, fixtureCtx())
				if err != nil {
					t.Fatal(err)
				}
				for _, par := range []int{0, 4} {
					for _, noCol := range []bool{false, true} {
						ctx := fixtureCtx()
						ctx.Parallelism = par
						ctx.NoColumnar = noCol
						got := mustEval(t, p, ctx)
						if !got.Equal(ref) {
							t.Fatalf("par=%d noColumnar=%v: result diverged:\n%v\nvs\n%v",
								par, noCol, got, ref)
						}
					}
				}
			})
		}
	}
}

// Selection-vector filtering must equal row compaction at the stream
// level: draining a fused chain with columnar on yields batch-for-batch
// the same rows (in order) as the row-at-a-time drain.
func TestColumnarDrainEqualsRowDrain(t *testing.T) {
	log, video := bigFixture(20000, 5000)
	rels := map[string]*relation.Relation{"Log": log, "Video": video}
	plan := PushDownScans(MustProject(
		MustSelect(Scan("Log", logSchema()), expr.Gt(expr.Col("videoId"), expr.IntLit(7))),
		[]Output{OutCol("sessionId"), Out("v2", expr.Mul(expr.Col("videoId"), expr.IntLit(2)))}))

	drain := func(noCol bool) []relation.Row {
		ctx := NewContext(rels)
		ctx.NoColumnar = noCol
		it := NewIterator(plan)
		if err := it.Open(ctx); err != nil {
			t.Fatal(err)
		}
		defer it.Close()
		var rows []relation.Row
		for {
			b, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if b == nil {
				return rows
			}
			if b.Len() == 0 {
				t.Fatal("iterator returned an empty batch")
			}
			if b.Columnar() {
				rows = b.CopyRows(rows)
				b.Release()
			} else {
				rows = append(rows, b.Rows()...)
				b.ReleaseUnlessOwned()
			}
		}
	}
	colRows, rowRows := drain(false), drain(true)
	if len(colRows) != len(rowRows) {
		t.Fatalf("columnar drained %d rows, row pipeline %d", len(colRows), len(rowRows))
	}
	for i := range colRows {
		if !colRows[i].Equal(rowRows[i]) {
			t.Fatalf("row %d: columnar %v != row %v", i, colRows[i], rowRows[i])
		}
	}
}

// The columnar drain guard: a fused scan→σ→Π chain evaluated column-at-
// a-time and released transiently must allocate ~0 objects per row in
// steady state — the batch pool recycles the batch, its typed vectors,
// its selection buffer, and the scratch vectors of EvalVec/FilterVec.
// This is the columnar extension of TestFusedPipelineZeroAllocsPerRow.
func TestColumnarPipelineZeroAllocsPerRow(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates and defeats sync.Pool; run without -race")
	}
	log, video := bigFixture(50000, 5000)
	rels := map[string]*relation.Relation{"Log": log, "Video": video}
	// PushDownScans fuses σ and Π into the scan, so the whole chain runs
	// through the columnar gather → FilterVec → vector-projection path.
	plan := PushDownScans(MustProject(
		MustSelect(Scan("Log", logSchema()), expr.Gt(expr.Col("videoId"), expr.IntLit(10))),
		[]Output{OutCol("sessionId"), Out("v2", expr.Mul(expr.Col("videoId"), expr.IntLit(2)))}))

	drain := func() int {
		ctx := NewContext(rels)
		it := NewIterator(plan)
		if err := it.Open(ctx); err != nil {
			t.Fatal(err)
		}
		defer it.Close()
		n := 0
		sawColumnar := false
		for {
			b, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if b == nil {
				if !sawColumnar {
					t.Fatal("fused chain never produced a columnar batch")
				}
				return n
			}
			if b.Columnar() {
				sawColumnar = true
			}
			n += b.Len()
			b.Release() // transient consumption: rows are only counted
		}
	}
	rows := drain()
	if rows < 40000 {
		t.Fatalf("fixture too small: %d rows", rows)
	}
	allocs := testing.AllocsPerRun(5, func() { drain() })
	perRow := allocs / float64(rows)
	if perRow >= 0.001 {
		t.Fatalf("columnar pipeline allocates %.4f objects/row (%.1f per drain, %d rows); want 0",
			perRow, allocs, rows)
	}
}

// The serial streaming aggregation over a columnar chain must match the
// partitioned row aggregation for grouped, grand, and expression-input
// aggregates.
func TestColumnarAggregationMatchesRow(t *testing.T) {
	log, video := bigFixture(8000, 300)
	rels := map[string]*relation.Relation{"Log": log, "Video": video}
	plans := map[string]Node{
		"grouped": PushDownScans(MustGroupBy(
			MustSelect(Scan("Log", logSchema()), expr.Gt(expr.Col("videoId"), expr.IntLit(3))),
			[]string{"videoId"}, CountAs("n"), SumAs(expr.Mul(expr.Col("sessionId"), expr.IntLit(2)), "s"))),
		"grand": PushDownScans(MustGroupBy(
			MustSelect(Scan("Video", videoSchema()), expr.Lt(expr.Col("ownerId"), expr.IntLit(50))),
			nil, CountAs("n"), AvgAs(expr.Col("duration"), "avg"),
			MinAs(expr.Col("duration"), "lo"), MaxAs(expr.Col("duration"), "hi"))),
	}
	for name, plan := range plans {
		t.Run(name, func(t *testing.T) {
			ref, err := EvalMaterialized(plan, NewContext(rels))
			if err != nil {
				t.Fatal(err)
			}
			for _, noCol := range []bool{false, true} {
				ctx := NewContext(rels)
				ctx.NoColumnar = noCol
				got := mustEval(t, plan, ctx)
				if !got.Equal(ref) {
					t.Fatalf("noColumnar=%v: aggregation diverged:\n%v\nvs\n%v", noCol, got, ref)
				}
			}
		})
	}
}
