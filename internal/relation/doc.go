// Package relation implements the tuple and relation substrate used by the
// SVC engine (the data model of the paper's Section 3.1): typed scalar
// values, schemas with primary-key metadata, rows, and in-memory
// primary-key-indexed relations, plus the pooled fixed-capacity Batch
// chunks the execution pipeline streams (DESIGN.md "Batch pipeline
// execution") and the zero-allocation encoded-key machinery (KeyBuf,
// ProbeBytes) behind hash joins and sampling.
//
// The terminology follows the paper: tuples of base relations are "records"
// and tuples of derived relations are "rows"; both are represented by Row.
//
// Concurrency contract: a Relation is single-writer — mutators (Insert,
// Upsert, Delete*, BuildIndex, Sort) must not race with anything. Sharing
// with concurrent readers goes through Snapshot(), which marks the
// relation copy-on-write and returns an immutable alias: readers use the
// snapshot freely while the owner's next mutation detaches onto private
// storage (see DESIGN.md "Snapshot serving layer"). Batches come from a
// global pool and follow a strict ownership protocol (the consumer that
// pulled a batch owns it; Release/ReleaseUnlessOwned/Pin) documented on
// the Batch type; a batch is owned by one goroutine at a time.
package relation
