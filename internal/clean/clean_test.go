package clean

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/sampleclean/svc/internal/algebra"
	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/hashing"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/view"
)

func logSchema() relation.Schema {
	return relation.NewSchema([]relation.Column{
		{Name: "sessionId", Type: relation.KindInt},
		{Name: "videoId", Type: relation.KindInt},
	}, "sessionId")
}

func videoSchema() relation.Schema {
	return relation.NewSchema([]relation.Column{
		{Name: "videoId", Type: relation.KindInt},
		{Name: "ownerId", Type: relation.KindInt},
		{Name: "duration", Type: relation.KindFloat},
	}, "videoId")
}

func visitViewDef() view.Definition {
	j := algebra.MustJoin(
		algebra.Scan("Log", logSchema()),
		algebra.Scan("Video", videoSchema()),
		algebra.JoinSpec{Type: algebra.Inner, On: algebra.On("videoId", "videoId"), Merge: true},
	)
	g := algebra.MustGroupBy(j, []string{"videoId"},
		algebra.CountAs("visitCount"),
		algebra.SumAs(expr.Col("duration"), "totalDuration"),
	)
	return view.Definition{Name: "visitView", Plan: g}
}

// buildScenario creates a Log/Video database with staged updates and the
// materialized (now stale) visitView.
func buildScenario(t testing.TB, seed int64, videos, visits, updates int) (*db.Database, *view.View, *view.Maintainer) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := db.New()
	vt := d.MustCreate("Video", videoSchema())
	for i := 0; i < videos; i++ {
		vt.MustInsert(relation.Row{relation.Int(int64(i)), relation.Int(rng.Int63n(10)), relation.Float(rng.Float64() * 3)})
	}
	lt := d.MustCreate("Log", logSchema())
	for i := 0; i < visits; i++ {
		lt.MustInsert(relation.Row{relation.Int(int64(i)), relation.Int(rng.Int63n(int64(videos)))})
	}
	v, err := view.Materialize(d, visitViewDef())
	if err != nil {
		t.Fatal(err)
	}
	m, err := view.NewMaintainer(v)
	if err != nil {
		t.Fatal(err)
	}
	// Staged updates: mostly new visits (incl. to brand-new videos),
	// some deletions.
	nextVideo := int64(videos)
	for i := 0; i < updates; i++ {
		switch rng.Intn(10) {
		case 0: // new video + visits to it
			vt.StageInsert(relation.Row{relation.Int(nextVideo), relation.Int(rng.Int63n(10)), relation.Float(rng.Float64() * 3)})
			lt.StageInsert(relation.Row{relation.Int(int64(visits + i)), relation.Int(nextVideo)})
			nextVideo++
		case 1: // delete an existing visit
			_ = lt.StageDelete(relation.Int(rng.Int63n(int64(visits))))
		default: // new visit to an existing video
			lt.StageInsert(relation.Row{relation.Int(int64(visits + i)), relation.Int(rng.Int63n(int64(videos)))})
		}
	}
	return d, v, m
}

func trueView(t testing.TB, d *db.Database, def view.Definition) *relation.Relation {
	t.Helper()
	snap := d.Snapshot()
	if err := snap.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	fresh, err := view.Materialize(snap, def)
	if err != nil {
		t.Fatal(err)
	}
	return fresh.Data()
}

func TestCleanerValidation(t *testing.T) {
	_, _, m := buildScenario(t, 1, 10, 100, 20)
	if _, err := New(m, 0, nil); err == nil {
		t.Error("ratio 0 should fail")
	}
	if _, err := New(m, 1.5, nil); err == nil {
		t.Error("ratio > 1 should fail")
	}
	if _, err := New(m, 0.1, nil); err != nil {
		t.Errorf("valid cleaner: %v", err)
	}
}

func TestCleanExpressionShape(t *testing.T) {
	_, _, m := buildScenario(t, 2, 10, 100, 20)
	c, err := New(m, 0.05, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan := algebra.Format(c.Expression())
	// The optimized plan must sample the stale view scan and the delta
	// scans below the merge join — the Figure 3 shape.
	if !strings.Contains(plan, "η(") {
		t.Fatalf("no sampling in plan:\n%s", plan)
	}
	// After push-down, the η(Scan(stale)) pattern is replaced by a direct
	// scan of the materialized sample Ŝ — C(Ŝ, D, ∂D) per Problem 1.
	var sampleScan, fullStaleScan bool
	algebra.Walk(c.Expression(), func(n algebra.Node) {
		if s, ok := n.(*algebra.ScanNode); ok {
			switch s.Name() {
			case SampleName("visitView"):
				sampleScan = true
			case view.StaleName("visitView"):
				fullStaleScan = true
			}
		}
	})
	if !sampleScan {
		t.Errorf("cleaning expression should read the materialized sample:\n%s", plan)
	}
	if fullStaleScan {
		t.Errorf("cleaning expression should not read the full stale view:\n%s", plan)
	}
	if c.UsesFullView() {
		t.Error("UsesFullView should be false for the visitView strategy")
	}
}

func TestCorrespondenceOnScenario(t *testing.T) {
	d, v, m := buildScenario(t, 3, 80, 1200, 250)
	c, err := New(m, 0.25, hashing.SHA1{})
	if err != nil {
		t.Fatal(err)
	}
	samples, err := c.Clean(d)
	if err != nil {
		t.Fatal(err)
	}
	truth := trueView(t, d, v.Definition())
	rep := CheckCorrespondence(v.Data(), truth, samples)
	if !rep.Ok() {
		t.Fatalf("correspondence violated: %+v", rep)
	}
	if samples.Stale.Len() == 0 || samples.Fresh.Len() == 0 {
		t.Fatal("samples should be non-empty at 25%")
	}
}

// TestCleanedSampleEqualsSampledTruth is the sharpest correctness check:
// Ŝ′ must equal η(S′) exactly (Theorem 1 applied to the maintenance
// expression).
func TestCleanedSampleEqualsSampledTruth(t *testing.T) {
	d, v, m := buildScenario(t, 4, 20, 400, 120)
	c, err := New(m, 0.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := c.Clean(d)
	if err != nil {
		t.Fatal(err)
	}
	truth := trueView(t, d, v.Definition())
	// Sample the truth with the same hash.
	ctx := algebra.NewContext(map[string]*relation.Relation{"T": truth})
	hf := algebra.MustHashFilter(algebra.Scan("T", truth.Schema()), v.KeyNames(), 0.3, nil)
	want, err := hf.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if samples.Fresh.Len() != want.Len() {
		t.Fatalf("Ŝ′ has %d rows, η(S′) has %d", samples.Fresh.Len(), want.Len())
	}
	for _, wrow := range want.Rows() {
		grow, ok := samples.Fresh.GetByEncodedKey(wrow.KeyOf(want.Schema().Key()))
		if !ok || !rowsAlmostEqual(grow, wrow) {
			t.Fatalf("row %v: got %v", wrow, grow)
		}
	}
}

// TestSamplingSavesWork verifies the core efficiency claim: cleaning a 10%
// sample touches far fewer rows than full maintenance.
func TestSamplingSavesWork(t *testing.T) {
	d, _, m := buildScenario(t, 5, 50, 5000, 500)
	c, err := New(m, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := c.Clean(d)
	if err != nil {
		t.Fatal(err)
	}
	full, err := m.Maintain(d)
	if err != nil {
		t.Fatal(err)
	}
	if samples.Stats.RowsTouched >= full.RowsTouched {
		t.Errorf("sampled cleaning touched %d rows, full maintenance %d — no savings",
			samples.Stats.RowsTouched, full.RowsTouched)
	}
	t.Logf("rows touched: SVC-10%% %d vs IVM %d (%.1fx)",
		samples.Stats.RowsTouched, full.RowsTouched,
		float64(full.RowsTouched)/float64(samples.Stats.RowsTouched))
}

// Property 1 under randomized workloads and ratios, for both hashers.
func TestCorrespondenceQuick(t *testing.T) {
	f := func(seed int64, ratioRaw uint8, useSHA bool) bool {
		ratio := 0.05 + float64(ratioRaw%90)/100
		var h hashing.Hasher = hashing.FNV{}
		if useSHA {
			h = hashing.SHA1{}
		}
		d, v, m := buildScenario(t, seed, 15, 200, 60)
		c, err := New(m, ratio, h)
		if err != nil {
			t.Log(err)
			return false
		}
		samples, err := c.Clean(d)
		if err != nil {
			t.Log(err)
			return false
		}
		truth := trueView(t, d, v.Definition())
		rep := CheckCorrespondence(v.Data(), truth, samples)
		if !rep.Ok() {
			t.Logf("seed %d ratio %v: %+v", seed, ratio, rep)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestMissingRowSamplingRate: over many seeds, missing rows are sampled at
// roughly rate m (Property 1's third clause, in expectation).
func TestMissingRowSamplingRate(t *testing.T) {
	const ratio = 0.5
	totalMissing, sampledMissing := 0, 0
	for seed := int64(0); seed < 20; seed++ {
		d, v, m := buildScenario(t, seed, 10, 150, 120)
		c, err := New(m, ratio, nil)
		if err != nil {
			t.Fatal(err)
		}
		samples, err := c.Clean(d)
		if err != nil {
			t.Fatal(err)
		}
		truth := trueView(t, d, v.Definition())
		keyIdx := truth.Schema().Key()
		for _, row := range truth.Rows() {
			if _, ok := v.Data().GetByEncodedKey(row.KeyOf(keyIdx)); !ok {
				totalMissing++
				if _, ok := samples.Fresh.GetByEncodedKey(row.KeyOf(keyIdx)); ok {
					sampledMissing++
				}
			}
		}
	}
	if totalMissing < 20 {
		t.Fatalf("scenario generated too few missing rows (%d) to test", totalMissing)
	}
	got := float64(sampledMissing) / float64(totalMissing)
	if got < ratio-0.15 || got > ratio+0.15 {
		t.Errorf("missing rows sampled at %v, want ≈%v (%d/%d)", got, ratio, sampledMissing, totalMissing)
	}
}

// Appendix 12.5: sampling on a non-unique attribute. Rows sharing the
// attribute value must enter the sample together (group-coherent
// inclusion), per-row inclusion stays ≈ m (unbiased estimates), and the
// sample-size variance exceeds the unique-key binomial variance.
func TestNonUniqueAttributeSampling(t *testing.T) {
	d, v, m := buildScenario(t, 42, 60, 1500, 300)
	c, err := NewOnAttrs(m, []string{"visitCount"}, 0.4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.SampleAttrs(); len(got) != 1 || got[0] != "visitCount" {
		t.Fatalf("SampleAttrs = %v", got)
	}
	samples, err := c.Clean(d)
	if err != nil {
		t.Fatal(err)
	}
	// Group coherence: every view row with the same visitCount value
	// enters or leaves the stale sample together (deterministic hashing
	// of the shared value).
	cntIdx := v.Schema().ColIndex("visitCount")
	inSample := map[int64]int{}
	inView := map[int64]int{}
	keyIdx := v.Schema().Key()
	for _, row := range v.Data().Rows() {
		o := row[cntIdx].AsInt()
		inView[o]++
		if _, ok := samples.Stale.GetByEncodedKey(row.KeyOf(keyIdx)); ok {
			inSample[o]++
		}
	}
	for o, n := range inSample {
		if n != 0 && n != inView[o] {
			t.Fatalf("count-group %d partially sampled: %d of %d", o, n, inView[o])
		}
	}
	// Unbiasedness: a scaled count over the cleaned sample tracks the
	// truth (loose bound — duplication inflates variance by design).
	truth := trueView(t, d, v.Definition())
	est := float64(samples.Fresh.Len()) / 0.4
	rel := est/float64(truth.Len()) - 1
	if rel > 1.2 || rel < -0.9 {
		t.Errorf("scaled count %.1f vs truth %d — beyond even the inflated-variance bound", est, truth.Len())
	}
	t.Logf("non-unique sampling: est %.1f vs truth %d (rel %+.2f)", est, truth.Len(), rel)
}

func TestNewOnAttrsValidation(t *testing.T) {
	_, _, m := buildScenario(t, 43, 10, 100, 10)
	if _, err := NewOnAttrs(m, []string{"nope"}, 0.5, nil); err == nil {
		t.Error("unknown attribute should fail")
	}
	if _, err := NewOnAttrs(m, nil, 0.5, nil); err == nil {
		t.Error("empty attribute set should fail")
	}
}
