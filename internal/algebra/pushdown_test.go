package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/hashing"
	"github.com/sampleclean/svc/internal/relation"
)

// randomCtx builds Log/Video relations with n log records over v videos,
// driven by a seed, for the randomized Theorem 1 checks.
func randomCtx(seed int64, n, v int) *Context {
	rng := rand.New(rand.NewSource(seed))
	video := relation.New(videoSchema())
	for i := 0; i < v; i++ {
		video.MustInsert(relation.Row{
			relation.Int(int64(i)),
			relation.Int(rng.Int63n(5)),
			relation.Float(rng.Float64() * 3),
		})
	}
	log := relation.New(logSchema())
	for i := 0; i < n; i++ {
		log.MustInsert(relation.Row{
			relation.Int(int64(i)),
			relation.Int(rng.Int63n(int64(v))),
		})
	}
	return NewContext(map[string]*relation.Relation{"Log": log, "Video": video})
}

// checkTheorem1 verifies that pushing η down the plan produces the
// identical sample as applying η at the root (paper Theorem 1), and reports
// whether the push-down made progress past the root.
func checkTheorem1(t *testing.T, plan Node, attrs []string, ratio float64, ctx func() *Context) (pushedPastRoot bool) {
	t.Helper()
	direct := MustHashFilter(plan, attrs, ratio, hashing.Default)
	pushed, err := PushDownHash(plan, attrs, ratio, hashing.Default)
	if err != nil {
		t.Fatalf("pushdown: %v", err)
	}
	want := mustEval(t, direct, ctx())
	got := mustEval(t, pushed, ctx())
	want.SortByKey()
	got.SortByKey()
	if !want.Equal(got) {
		t.Fatalf("Theorem 1 violated for plan:\n%s\npushed:\n%s\nwant %d rows, got %d",
			Format(direct), Format(pushed), want.Len(), got.Len())
	}
	_, stillAtRoot := pushed.(*HashFilterNode)
	return !stillAtRoot
}

func TestPushThroughSelect(t *testing.T) {
	plan := MustSelect(Scan("Log", logSchema()), expr.Gt(expr.Col("videoId"), expr.IntLit(0)))
	if !checkTheorem1(t, plan, []string{"sessionId"}, 0.4, fixtureCtx) {
		t.Error("η should push through σ")
	}
}

func TestPushThroughProjectRename(t *testing.T) {
	plan := MustProject(Scan("Video", videoSchema()), []Output{
		Out("vid", expr.Col("videoId")),
		Out("scaled", expr.Mul(expr.Col("duration"), expr.IntLit(60))),
	})
	if !checkTheorem1(t, plan, []string{"vid"}, 0.6, fixtureCtx) {
		t.Error("η should push through renaming Π")
	}
}

func TestPushBlockedByTransformedKey(t *testing.T) {
	// V22-style: the sampled attribute is a transformation of a key, not
	// a pass-through — push-down must stop at the projection.
	plan := MustProjectKeyed(Scan("Video", videoSchema()), []Output{
		Out("videoId", expr.Col("videoId")),
		Out("grp", expr.Func("mod", expr.Col("videoId"), expr.IntLit(2))),
	}, "videoId")
	pushed, err := PushDownHash(plan, []string{"grp"}, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pushed.(*HashFilterNode); !ok {
		t.Fatalf("expected blocked push-down, got:\n%s", Format(pushed))
	}
	checkTheorem1(t, plan, []string{"grp"}, 0.5, fixtureCtx)
}

func TestPushThroughGroupBy(t *testing.T) {
	plan := MustGroupBy(Scan("Log", logSchema()), []string{"videoId"}, CountAs("visitCount"))
	if !checkTheorem1(t, plan, []string{"videoId"}, 0.5, fixtureCtx) {
		t.Error("η should push through γ on the group key")
	}
	// Sanity: the pushed plan samples *before* aggregation, so surviving
	// groups keep their full counts (no partial counts — the paper's
	// Section 4.2 commutativity example).
	pushed, _ := PushDownHash(plan, []string{"videoId"}, 0.5, nil)
	out := mustEval(t, pushed, fixtureCtx())
	full := mustEval(t, plan, fixtureCtx())
	for _, row := range out.Rows() {
		want, ok := full.Get(row[0])
		if !ok || want[1].AsInt() != row[1].AsInt() {
			t.Fatalf("partial count for group %v: got %v want %v", row[0], row[1], want)
		}
	}
}

func TestPushBlockedByNestedAggregate(t *testing.T) {
	// V21-style nested aggregate: γ_c(γ_videoId(Log)) grouped by the
	// *count* — provably not push-down-able (paper Theorem 1 proof).
	inner := MustGroupBy(Scan("Log", logSchema()), []string{"videoId"}, CountAs("c"))
	outer := MustGroupBy(inner, []string{"c"}, CountAs("n"))
	pushed, err := PushDownHash(outer, []string{"c"}, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	// η may slide below the outer γ (c is its group key) but must stop
	// above the inner aggregate: the base scan still runs at full size,
	// which is exactly why V21-style views see little speedup.
	scanSampled := false
	Walk(pushed, func(n Node) {
		if h, ok := n.(*HashFilterNode); ok {
			if _, isScan := h.child.(*ScanNode); isScan {
				scanSampled = true
			}
		}
	})
	if scanSampled {
		t.Fatalf("nested aggregate must not push η to the base scan:\n%s", Format(pushed))
	}
	checkTheorem1(t, outer, []string{"c"}, 0.5, fixtureCtx)
}

func TestPushFKJoinToFactSide(t *testing.T) {
	// η on (sessionId, videoId) over Log ⋈ Video: everything resolves to
	// the fact side (Log), so the dimension stays unsampled — the paper's
	// foreign-key special case.
	j := MustJoin(Scan("Log", logSchema()), Scan("Video", videoSchema()),
		JoinSpec{Type: Inner, On: On("videoId", "videoId"), Merge: true})
	attrs := j.Schema().KeyNames()
	if !checkTheorem1(t, j, attrs, 0.5, fixtureCtx) {
		t.Error("FK join should push to the fact side")
	}
	pushed, _ := PushDownHash(j, attrs, 0.5, nil)
	jn, ok := pushed.(*JoinNode)
	if !ok {
		t.Fatalf("expected join at root:\n%s", Format(pushed))
	}
	if _, ok := jn.left.(*HashFilterNode); !ok {
		t.Errorf("fact side not sampled:\n%s", Format(pushed))
	}
	if _, ok := jn.right.(*ScanNode); !ok {
		t.Errorf("dimension side should stay a plain scan:\n%s", Format(pushed))
	}
}

func TestPushEqualityJoinBothSides(t *testing.T) {
	// η on the equality attribute pushes to both sides.
	j := MustJoin(Scan("Log", logSchema()), Scan("Video", videoSchema()),
		JoinSpec{Type: Inner, On: On("videoId", "videoId"), Merge: true})
	if !checkTheorem1(t, j, []string{"videoId"}, 0.5, fixtureCtx) {
		t.Error("equality join should push η")
	}
	pushed, _ := PushDownHash(j, []string{"videoId"}, 0.5, nil)
	jn := pushed.(*JoinNode)
	if _, ok := jn.left.(*HashFilterNode); !ok {
		t.Errorf("left side not sampled:\n%s", Format(pushed))
	}
	if _, ok := jn.right.(*HashFilterNode); !ok {
		t.Errorf("right side not sampled:\n%s", Format(pushed))
	}
}

func TestPushCrossJoinBlockedOnMixedAttrs(t *testing.T) {
	a := Alias(Scan("Video", videoSchema()), "a")
	b := Alias(Scan("Video", videoSchema()), "b")
	j := MustJoin(a, b, JoinSpec{Type: Inner})
	// Attributes from both sides of a cross join: blocked.
	pushed, err := PushDownHash(j, []string{"a.videoId", "b.videoId"}, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pushed.(*HashFilterNode); !ok {
		t.Fatalf("cross join with mixed attrs should block:\n%s", Format(pushed))
	}
	checkTheorem1(t, j, []string{"a.videoId", "b.videoId"}, 0.5, fixtureCtx)
	// One-sided attrs still push.
	if !checkTheorem1(t, j, []string{"a.videoId"}, 0.5, fixtureCtx) {
		t.Error("one-sided attrs over cross join should push")
	}
}

func TestPushFullOuterMergedJoin(t *testing.T) {
	// The change-table merge shape: full outer join of two aggregates on
	// the view key, merged — push must reach both branches.
	perVideoA := MustGroupBy(MustSelect(Scan("Log", logSchema()),
		expr.Le(expr.Col("sessionId"), expr.IntLit(102))), []string{"videoId"}, CountAs("cntA"))
	perVideoB := MustGroupBy(MustSelect(Scan("Log", logSchema()),
		expr.Gt(expr.Col("sessionId"), expr.IntLit(102))), []string{"videoId"}, CountAs("cntB"))
	bProj := MustProject(perVideoB, []Output{Out("vB", expr.Col("videoId")), OutCol("cntB")})
	j := MustJoin(perVideoA, bProj, JoinSpec{Type: FullOuter, On: On("videoId", "vB"), Merge: true})
	if !checkTheorem1(t, j, []string{"videoId"}, 0.5, fixtureCtx) {
		t.Error("full outer merged join should push to both branches")
	}
	pushed, _ := PushDownHash(j, []string{"videoId"}, 0.5, nil)
	// Both branches should contain a hash filter below the join.
	filters := 0
	Walk(pushed, func(n Node) {
		if _, ok := n.(*HashFilterNode); ok {
			filters++
		}
	})
	if filters < 2 {
		t.Errorf("expected η in both branches:\n%s", Format(pushed))
	}
}

func TestPushFullOuterNonMergedBlocked(t *testing.T) {
	perVideo := MustGroupBy(Scan("Log", logSchema()), []string{"videoId"}, CountAs("cnt"))
	other := MustProject(perVideo, []Output{Out("v2", expr.Col("videoId")), Out("cnt2", expr.Col("cnt"))})
	j := MustJoin(perVideo, other, JoinSpec{Type: FullOuter, On: On("videoId", "v2")})
	pushed, err := PushDownHash(j, []string{"videoId"}, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pushed.(*HashFilterNode); !ok {
		t.Fatalf("non-merged full outer should block:\n%s", Format(pushed))
	}
	checkTheorem1(t, j, []string{"videoId"}, 0.5, fixtureCtx)
}

func TestPushLeftOuterOwnColumnsOnly(t *testing.T) {
	j := MustJoin(Scan("Log", logSchema()), Scan("Video", videoSchema()),
		JoinSpec{Type: LeftOuter, On: On("videoId", "videoId"), Merge: true})
	// Left key attrs push to the left side only.
	if !checkTheorem1(t, j, []string{"sessionId"}, 0.5, fixtureCtx) {
		t.Error("left outer should push left-side attrs")
	}
	// A right-side attribute cannot push through a left outer join.
	pushed, _ := PushDownHash(j, []string{"ownerId"}, 0.5, nil)
	if _, ok := pushed.(*HashFilterNode); !ok {
		t.Fatalf("right attr through left outer should block:\n%s", Format(pushed))
	}
	checkTheorem1(t, j, []string{"ownerId"}, 0.5, fixtureCtx)
}

func TestPushThroughSetOps(t *testing.T) {
	a := MustSelect(Scan("Log", logSchema()), expr.Le(expr.Col("sessionId"), expr.IntLit(102)))
	b := MustSelect(Scan("Log", logSchema()), expr.Ge(expr.Col("sessionId"), expr.IntLit(102)))
	for name, plan := range map[string]Node{
		"union":     MustUnion(a, b),
		"intersect": MustIntersect(a, b),
		"diff":      MustDifference(a, b),
	} {
		if !checkTheorem1(t, plan, []string{"sessionId"}, 0.5, fixtureCtx) {
			t.Errorf("%s: η should push through", name)
		}
	}
	// Non-key attribute through keyed difference must block (rows match
	// by key; attr values may differ between operands).
	d := MustDifference(a, b)
	pushed, _ := PushDownHash(d, []string{"videoId"}, 0.5, nil)
	if _, ok := pushed.(*HashFilterNode); !ok {
		t.Fatalf("non-key attr through keyed difference should block:\n%s", Format(pushed))
	}
}

func TestPushThroughAlias(t *testing.T) {
	plan := Alias(Scan("Log", logSchema()), "l")
	if !checkTheorem1(t, plan, []string{"l.sessionId"}, 0.5, fixtureCtx) {
		t.Error("η should push through alias")
	}
}

func TestPushThroughExistingHashFilter(t *testing.T) {
	inner := MustHashFilter(Scan("Log", logSchema()), []string{"videoId"}, 0.8, nil)
	checkTheorem1(t, inner, []string{"sessionId"}, 0.5, fixtureCtx)
	pushed, err := PushDownHash(inner, []string{"sessionId"}, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The new η must land *below* the pre-existing filter, directly on
	// the scan.
	root, ok := pushed.(*HashFilterNode)
	if !ok || root.Attrs()[0] != "videoId" {
		t.Fatalf("root should be the original filter:\n%s", Format(pushed))
	}
	child, ok := root.child.(*HashFilterNode)
	if !ok || child.Attrs()[0] != "sessionId" {
		t.Fatalf("new filter should commute below:\n%s", Format(pushed))
	}
}

// TestTheorem1Quick drives the Theorem 1 identity over randomized data and
// a family of plan shapes, including the visitView maintenance-strategy
// shape (the paper's Figure 3).
func TestTheorem1Quick(t *testing.T) {
	shapes := []struct {
		name  string
		build func() (Node, []string)
	}{
		{"select-scan", func() (Node, []string) {
			return MustSelect(Scan("Log", logSchema()), expr.Gt(expr.Col("videoId"), expr.IntLit(3))), []string{"sessionId"}
		}},
		{"groupby", func() (Node, []string) {
			return MustGroupBy(Scan("Log", logSchema()), []string{"videoId"}, CountAs("c")), []string{"videoId"}
		}},
		{"fk-join", func() (Node, []string) {
			j := MustJoin(Scan("Log", logSchema()), Scan("Video", videoSchema()),
				JoinSpec{Type: Inner, On: On("videoId", "videoId"), Merge: true})
			return j, j.Schema().KeyNames()
		}},
		{"visitview", func() (Node, []string) {
			// γ_videoId(count) over Log ⋈ Video — the running example.
			j := MustJoin(Scan("Log", logSchema()), Scan("Video", videoSchema()),
				JoinSpec{Type: Inner, On: On("videoId", "videoId"), Merge: true})
			return MustGroupBy(j, []string{"videoId"}, CountAs("visitCount")), []string{"videoId"}
		}},
		{"change-table", func() (Node, []string) {
			// Full outer merge of two per-video aggregates, then the
			// coalescing merge projection — the IVM strategy shape.
			oldN := MustGroupBy(MustSelect(Scan("Log", logSchema()),
				expr.Eq(expr.Func("mod", expr.Col("sessionId"), expr.IntLit(2)), expr.IntLit(0))),
				[]string{"videoId"}, CountAs("cnt"))
			newN := MustProject(MustGroupBy(MustSelect(Scan("Log", logSchema()),
				expr.Eq(expr.Func("mod", expr.Col("sessionId"), expr.IntLit(2)), expr.IntLit(1))),
				[]string{"videoId"}, CountAs("cntD")),
				[]Output{Out("vD", expr.Col("videoId")), OutCol("cntD")})
			j := MustJoin(oldN, newN, JoinSpec{Type: FullOuter, On: On("videoId", "vD"), Merge: true})
			merged := MustProjectKeyed(j, []Output{
				OutCol("videoId"),
				Out("cnt", expr.Add(
					expr.Coalesce(expr.Col("cnt"), expr.IntLit(0)),
					expr.Coalesce(expr.Col("cntD"), expr.IntLit(0)))),
			}, "videoId")
			return merged, []string{"videoId"}
		}},
	}
	f := func(seed int64, ratioRaw uint8) bool {
		n := 30 + int(seed%50+50)%50
		v := 8
		ratio := float64(ratioRaw%100) / 100
		for _, shape := range shapes {
			plan, attrs := shape.build()
			direct := MustHashFilter(plan, attrs, ratio, hashing.Default)
			pushed, err := PushDownHash(plan, attrs, ratio, hashing.Default)
			if err != nil {
				t.Logf("%s: %v", shape.name, err)
				return false
			}
			want, err := direct.Eval(randomCtx(seed, n, v))
			if err != nil {
				t.Logf("%s direct eval: %v", shape.name, err)
				return false
			}
			got, err := pushed.Eval(randomCtx(seed, n, v))
			if err != nil {
				t.Logf("%s pushed eval: %v", shape.name, err)
				return false
			}
			want.SortByKey()
			got.SortByKey()
			if !want.Equal(got) {
				t.Logf("%s: mismatch at seed %d ratio %v: %d vs %d rows",
					shape.name, seed, ratio, want.Len(), got.Len())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestSamplingRatioApproximate checks the η operator selects roughly m of
// the rows for moderate table sizes (SUHA uniformity).
func TestSamplingRatioApproximate(t *testing.T) {
	ctx := randomCtx(7, 5000, 50)
	for _, m := range []float64{0.1, 0.25, 0.5} {
		for _, h := range []hashing.Hasher{hashing.FNV{}, hashing.SHA1{}} {
			out := mustEval(t, MustHashFilter(Scan("Log", logSchema()), []string{"sessionId"}, m, h), ctx)
			got := float64(out.Len()) / 5000
			if got < m-0.03 || got > m+0.03 {
				t.Errorf("%s ratio %v: sampled fraction %v", h.Name(), m, got)
			}
		}
	}
}
