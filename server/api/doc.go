// Package api defines the JSON wire protocol of svcd, the svcql-over-HTTP
// serving daemon. It is shared by package server (the daemon) and package
// client (the thin Go client) and holds types only — no behavior — so
// importing it pulls in neither side.
//
// All types are plain data and safe to marshal/unmarshal concurrently.
package api
