package relation

import (
	"math"
	"math/rand"
	"testing"
)

// codecValues covers every kind, NULL, and awkward payloads (NaN, ±0.0,
// huge ints past float53 precision, NUL-bearing strings).
func codecValues() []Value {
	return []Value{
		Null(),
		Int(0), Int(1), Int(-1), Int(math.MaxInt64), Int(math.MinInt64),
		Int(1<<53 + 1),
		Float(0), Float(math.Copysign(0, -1)), Float(1.5), Float(-2.25),
		Float(math.NaN()), Float(math.Inf(1)), Float(math.Inf(-1)),
		String(""), String("a"), String("hello world"), String("x\x00y\x01z"),
		Bool(true), Bool(false),
	}
}

// The vector cell codec must round-trip every Value exactly: same kind,
// same canonical encoding (KeyEqual), same payload — for homogeneous,
// NULL-interleaved, and mixed-kind vectors alike.
func TestColVecRoundTrip(t *testing.T) {
	vals := codecValues()
	// Homogeneous-per-kind vectors with interleaved NULLs.
	byKind := map[Kind][]Value{}
	for _, v := range vals {
		byKind[v.Kind()] = append(byKind[v.Kind()], v)
	}
	for kind, kv := range byKind {
		var vec ColVec
		var want []Value
		for i, v := range kv {
			if i%2 == 1 {
				vec.AppendNull()
				want = append(want, Null())
			}
			vec.AppendValue(v)
			want = append(want, v)
		}
		if vec.Mixed() {
			t.Errorf("kind %v: homogeneous vector went mixed", kind)
		}
		checkRoundTrip(t, &vec, want)
	}
	// One mixed vector holding everything.
	var vec ColVec
	vec.AppendValue(vals[1]) // start typed so the demotion path runs
	want := []Value{vals[1]}
	for _, v := range vals {
		vec.AppendValue(v)
		want = append(want, v)
	}
	if !vec.Mixed() {
		t.Fatal("kind-spanning vector should be mixed")
	}
	checkRoundTrip(t, &vec, want)
}

func checkRoundTrip(t *testing.T, vec *ColVec, want []Value) {
	t.Helper()
	if vec.Len() != len(want) {
		t.Fatalf("Len %d != %d", vec.Len(), len(want))
	}
	for i, w := range want {
		got := vec.Value(i)
		if got.Kind() != w.Kind() || !got.KeyEqual(w) {
			t.Fatalf("cell %d: got %v (%v), want %v (%v)", i, got, got.Kind(), w, w.Kind())
		}
		if string(got.Encode()) != string(w.Encode()) {
			t.Fatalf("cell %d: encoding drift: %q vs %q", i, got.Encode(), w.Encode())
		}
		if vec.IsNull(i) != w.IsNull() {
			t.Fatalf("cell %d: IsNull %v, want %v", i, vec.IsNull(i), w.IsNull())
		}
	}
}

// All-NULL prefixes must backfill correctly when the vector later adopts
// a kind.
func TestColVecNullPrefix(t *testing.T) {
	for _, first := range []Value{Int(7), Float(1.5), String("s"), Bool(true)} {
		var vec ColVec
		vec.AppendNull()
		vec.AppendNull()
		vec.AppendValue(first)
		vec.AppendNull()
		want := []Value{Null(), Null(), first, Null()}
		checkRoundTrip(t, &vec, want)
	}
}

// GatherFrom must equal per-cell Value round-trips at selected positions.
func TestColVecGather(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := codecValues()
	for trial := 0; trial < 50; trial++ {
		var src ColVec
		n := 1 + rng.Intn(64)
		mixed := rng.Intn(2) == 0
		base := vals[rng.Intn(len(vals))]
		for i := 0; i < n; i++ {
			if mixed {
				src.AppendValue(vals[rng.Intn(len(vals))])
			} else if rng.Intn(4) == 0 {
				src.AppendNull()
			} else {
				src.AppendValue(base)
			}
		}
		var sel []int32
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				sel = append(sel, int32(i))
			}
		}
		var dst ColVec
		dst.GatherFrom(&src, sel)
		if dst.Len() != len(sel) {
			t.Fatalf("gather len %d != %d", dst.Len(), len(sel))
		}
		for k, i := range sel {
			if g, w := dst.Value(k), src.Value(int(i)); g.Kind() != w.Kind() || !g.KeyEqual(w) {
				t.Fatalf("gather cell %d: %v != %v", k, g, w)
			}
		}
	}
}

// Selection-vector filtering on a columnar batch must equal row
// compaction: materializing a batch restricted by a selection yields
// exactly the rows a row-at-a-time filter would have kept.
func TestBatchSelectionEqualsCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	vals := codecValues()
	for trial := 0; trial < 50; trial++ {
		width := 1 + rng.Intn(4)
		n := 1 + rng.Intn(200)
		rows := make([]Row, n)
		for i := range rows {
			rows[i] = make(Row, width)
			for c := range rows[i] {
				// Column-homogeneous base kind with occasional NULLs, the
				// common shape; trial%2 flips to fully random cells.
				if trial%2 == 0 {
					rows[i][c] = vals[(c*3+1)%len(vals)]
					if rng.Intn(5) == 0 {
						rows[i][c] = Null()
					}
				} else {
					rows[i][c] = vals[rng.Intn(len(vals))]
				}
			}
		}
		b := GetBatch()
		b.BeginColumnar(width)
		for c := 0; c < width; c++ {
			for i := 0; i < n; i++ {
				b.Vec(c).AppendValue(rows[i][c])
			}
		}
		keepRow := func(i int) bool { return i%3 != trial%3 }
		sel := b.SelIdentity(n)[:0]
		var compacted []Row
		for i := 0; i < n; i++ {
			if keepRow(i) {
				sel = append(sel, int32(i))
				compacted = append(compacted, rows[i])
			}
		}
		b.SetSel(sel)
		if b.Len() != len(compacted) {
			t.Fatalf("selected %d rows, compaction kept %d", b.Len(), len(compacted))
		}
		// Three readers must agree with the compaction: ValueAt, CopyRows,
		// and the Rows() compatibility view.
		allIdx := make([]int, width)
		for c := range allIdx {
			allIdx[c] = c
		}
		// KeyEqualCols (canonical-encoding identity) rather than Equal:
		// the codec must be exact even for NaN, which float == rejects.
		copied := b.CopyRows(nil)
		for k, want := range compacted {
			phys := b.PhysRow(k)
			for c := 0; c < width; c++ {
				if g := b.ValueAt(phys, c); g.Kind() != want[c].Kind() || !g.KeyEqual(want[c]) {
					t.Fatalf("ValueAt(%d,%d) = %v, want %v", phys, c, g, want[c])
				}
			}
			if !copied[k].KeyEqualCols(allIdx, want, allIdx) {
				t.Fatalf("CopyRows row %d = %v, want %v", k, copied[k], want)
			}
		}
		view := b.Rows()
		if len(view) != len(compacted) {
			t.Fatalf("Rows() view has %d rows, want %d", len(view), len(compacted))
		}
		for k, want := range compacted {
			if !view[k].KeyEqualCols(allIdx, want, allIdx) {
				t.Fatalf("Rows() row %d = %v, want %v", k, view[k], want)
			}
		}
		// The compat view marks the batch owned; dropping it is legal.
		b.ReleaseUnlessOwned()
	}
}

// EncodeColsAt must produce byte-identical keys to Row.EncodeCols.
func TestBatchEncodeColsMatchesRow(t *testing.T) {
	vals := codecValues()
	width := 3
	b := GetBatch()
	defer b.Release()
	b.BeginColumnar(width)
	var rows []Row
	for i := 0; i < len(vals); i++ {
		row := Row{vals[i], vals[(i+5)%len(vals)], vals[(i*7)%len(vals)]}
		rows = append(rows, row)
		for c := 0; c < width; c++ {
			b.Vec(c).AppendValue(row[c])
		}
	}
	idx := []int{2, 0}
	for i, row := range rows {
		got := b.EncodeColsAt(i, idx, nil)
		want := row.EncodeCols(idx, nil)
		if string(got) != string(want) {
			t.Fatalf("row %d: columnar key %q != row key %q", i, got, want)
		}
	}
}

// FuzzValueColVecRoundTrip lets the fuzzer hunt for a Value whose trip
// through a column vector (typed or mixed, NULL-adjacent) is not exact.
func FuzzValueColVecRoundTrip(f *testing.F) {
	f.Add(uint8(1), int64(42), 3.14, "s", true)
	f.Add(uint8(0), int64(0), 0.0, "", false)
	f.Add(uint8(2), int64(1<<53+1), math.Inf(-1), "\x00\x01", true)
	f.Add(uint8(4), int64(-9), math.NaN(), "κλειδί", false)
	f.Fuzz(func(t *testing.T, kind uint8, i int64, fv float64, s string, null bool) {
		var v Value
		switch Kind(kind % 5) {
		case KindNull:
			v = Null()
		case KindInt:
			v = Int(i)
		case KindFloat:
			v = Float(fv)
		case KindString:
			v = String(s)
		default:
			v = Bool(i%2 == 0)
		}
		check := func(vec *ColVec, at int) {
			got := vec.Value(at)
			if got.Kind() != v.Kind() || !got.KeyEqual(v) {
				t.Fatalf("round trip: got %v (%v), want %v (%v)", got, got.Kind(), v, v.Kind())
			}
			if string(got.Encode()) != string(v.Encode()) {
				t.Fatalf("encoding drift: %q vs %q", got.Encode(), v.Encode())
			}
		}
		// Typed vector, optionally with a NULL prefix/suffix.
		var typed ColVec
		if null {
			typed.AppendNull()
		}
		typed.AppendValue(v)
		typed.AppendNull()
		at := 0
		if null {
			at = 1
		}
		check(&typed, at)
		// Mixed vector: force demotion with a foreign kind first.
		var mixed ColVec
		mixed.AppendValue(Int(1))
		mixed.AppendValue(String("force-mixed"))
		mixed.AppendValue(v)
		check(&mixed, 2)
	})
}
