package bench

import (
	"fmt"
	"os"

	"github.com/sampleclean/svc/internal/workload"
)

// matrix runs the generated adversarial workload grid: every scenario in
// workload.Scenarios() × every engine config (both maintenance strategies
// × columnar on/off × serial/parallel), measuring CI coverage, CI width,
// relative error, and maintain/clean/query latency for the full estimator
// suite. Besides the bench table it writes the WORKLOADS.md dashboard and
// BENCH_matrix.json (the artifact the CI jq coverage gate reads), and —
// when run from the repo root — freezes minimized regression fixtures
// under internal/workload/fixtures/.

func init() {
	register("matrix",
		"adversarial workload matrix: estimator accuracy dashboard (writes WORKLOADS.md + BENCH_matrix.json)",
		runMatrix)
}

// matrixFixtureDir receives frozen fixtures when it exists relative to
// the working directory (i.e. when svcbench runs from the repo root).
const matrixFixtureDir = "internal/workload/fixtures"

func runMatrix(s Scale) (*Table, error) {
	opts := workload.Options{Scale: float64(s)}
	if st, err := os.Stat(matrixFixtureDir); err == nil && st.IsDir() {
		opts.FixtureDir = matrixFixtureDir
	}
	res, err := workload.RunMatrix(opts)
	if err != nil {
		return nil, err
	}
	if err := workload.WriteJSON("BENCH_matrix.json", res); err != nil {
		return nil, err
	}
	if err := workload.WriteDashboard("WORKLOADS.md", res); err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "matrix",
		Title:  "Workload matrix: estimator accuracy across generated adversarial scenarios",
		Header: []string{"scenario", "estimator", "coverage", "relErr", "relWidth", "meanK", "gated"},
	}
	for _, a := range res.Aggregates {
		cov := "—"
		if a.Coverage != nil {
			cov = fmt.Sprintf("%.3f", *a.Coverage)
		}
		t.AddRow(a.Scenario, a.Estimator, cov, a.MeanRelErr, a.MeanRelWidth, a.MeanK, a.Gated)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d scenarios × %d engine configs, %d salted trials/round, nominal CI %.0f%%",
			len(res.Scenarios), len(workload.Configs()), res.Trials, res.Confidence*100),
		fmt.Sprintf("%d regression triggers fired; %d fixtures frozen", len(res.Failures), len(res.Fixtures)),
		"full dashboard: WORKLOADS.md; machine-readable: BENCH_matrix.json")
	return t, nil
}
