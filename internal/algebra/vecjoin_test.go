package algebra

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
)

// Fuzz fixtures for the columnar join: relations with hostile key
// material — NULLs, NaN, -0.0 vs 0.0, empty strings, low-cardinality
// strings (dictionary-friendly) next to unique ones — exercised through
// every join type, serial and parallel, against the row path and the
// materialized oracle.

// fuzzValue draws one value of the column class c ("int", "str", "float").
func fuzzValue(rng *rand.Rand, c string) relation.Value {
	if rng.Intn(10) == 0 {
		return relation.Null()
	}
	switch c {
	case "int":
		return relation.Int(int64(rng.Intn(8)))
	case "str":
		switch rng.Intn(8) {
		case 0:
			return relation.String("")
		case 1:
			return relation.String(fmt.Sprintf("unique-%d", rng.Int63()))
		default:
			return relation.String([]string{"red", "green", "blue", "cyan"}[rng.Intn(4)])
		}
	default: // float
		switch rng.Intn(8) {
		case 0:
			return relation.Float(math.NaN())
		case 1:
			return relation.Float(math.Copysign(0, -1))
		case 2:
			return relation.Float(0)
		default:
			return relation.Float(float64(rng.Intn(5)))
		}
	}
}

// fuzzRel builds a keyless relation of n rows whose columns follow the
// given classes.
func fuzzRel(rng *rand.Rand, names []string, classes []string, n int) *relation.Relation {
	cols := make([]relation.Column, len(names))
	for i, name := range names {
		cols[i] = relation.Column{Name: name}
	}
	rel := relation.New(relation.NewSchema(cols))
	for i := 0; i < n; i++ {
		row := make(relation.Row, len(names))
		for c := range row {
			row[c] = fuzzValue(rng, classes[c])
		}
		rel.MustInsert(row)
	}
	return rel
}

// drainIter drains n's iterator into decoupled rows (columnar batches are
// slab-copied, so released vectors cannot alias the result).
func drainIter(t *testing.T, ctx *Context, n Node) []relation.Row {
	t.Helper()
	it := NewIterator(n)
	if err := it.Open(ctx); err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var rows []relation.Row
	for {
		b, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			return rows
		}
		if b.Len() == 0 {
			t.Fatal("iterator returned an empty batch")
		}
		if b.Columnar() {
			rows = b.CopyRows(rows)
			b.Release()
		} else {
			rows = append(rows, b.Rows()...)
			b.ReleaseUnlessOwned()
		}
	}
}

// encRows renders rows as canonical key encodings — injective, so NaN
// equals NaN and -0.0 differs from 0.0 (Value.Equal would misjudge both).
func encRows(rows []relation.Row, width int) []string {
	idx := allIdx(width)
	var kb relation.KeyBuf
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = string(kb.Row(r, idx))
	}
	return out
}

// requireSameRows asserts got and want are identical row for row.
func requireSameRows(t *testing.T, label string, got, want []relation.Row, width int) {
	t.Helper()
	ge, we := encRows(got, width), encRows(want, width)
	if len(ge) != len(we) {
		t.Fatalf("%s: %d rows, want %d", label, len(ge), len(we))
	}
	for i := range ge {
		if ge[i] != we[i] {
			t.Fatalf("%s: row %d differs:\n  got  %v\n  want %v", label, i, got[i], want[i])
		}
	}
}

// TestColumnarJoinMatchesRowJoin is the core equivalence suite: for every
// join type × merge × input shape (keyless derived sides that drain into
// ColSets, plain indexed scans that trigger index probes from columnar
// probe sides, and mixes), the columnar join's output stream must equal
// the row path's and the materialized oracle's, serially and in parallel,
// with identical RowsTouched accounting.
func TestColumnarJoinMatchesRowJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(0xC01A))
	left := fuzzRel(rng, []string{"k", "s", "f", "a"}, []string{"int", "str", "float", "int"}, 3000)
	right := fuzzRel(rng, []string{"rk", "rs", "rf", "b"}, []string{"int", "str", "float", "int"}, 2500)
	rels := map[string]*relation.Relation{"L": left, "R": right}
	lSch, rSch := left.Schema(), right.Schema()

	// Derived keyless children: a vectorizable select forces the ColSet
	// drain (a plain scan would stay relation-backed).
	derivedL := func() Node {
		return MustSelect(Scan("L", lSch), expr.Ne(expr.Col("a"), expr.IntLit(-1)))
	}
	derivedR := func() Node {
		return MustSelect(Scan("R", rSch), expr.Ne(expr.Col("b"), expr.IntLit(-1)))
	}
	plainL := func() Node { return Scan("L", lSch) }
	plainR := func() Node { return Scan("R", rSch) }

	shapes := map[string]func() (Node, Node){
		"bag-bag":     func() (Node, Node) { return derivedL(), derivedR() },
		"bag-plain":   func() (Node, Node) { return derivedL(), plainR() },
		"plain-bag":   func() (Node, Node) { return plainL(), derivedR() },
		"plain-plain": func() (Node, Node) { return plainL(), plainR() },
	}
	on := []EqPair{{Left: "k", Right: "rk"}, {Left: "s", Right: "rs"}}
	for shape, mk := range shapes {
		for _, typ := range []JoinType{Inner, LeftOuter, RightOuter, FullOuter} {
			for _, merge := range []bool{false, true} {
				name := fmt.Sprintf("%s/%s/merge=%v", shape, typ, merge)
				t.Run(name, func(t *testing.T) {
					l, r := mk()
					j := MustJoin(l, r, JoinSpec{Type: typ, On: on, Merge: merge})
					width := j.Schema().NumCols()
					oracle, err := EvalMaterialized(j, NewContext(rels))
					if err != nil {
						t.Fatal(err)
					}
					for _, par := range []int{0, 4} {
						rowCtx := NewContext(rels)
						rowCtx.Parallelism = par
						rowCtx.NoColumnar = true
						rowRows := drainIter(t, rowCtx, j)
						requireSameRows(t, fmt.Sprintf("par=%d row-vs-oracle", par), rowRows, oracle.Rows(), width)

						colCtx := NewContext(rels)
						colCtx.Parallelism = par
						colRows := drainIter(t, colCtx, j)
						requireSameRows(t, fmt.Sprintf("par=%d columnar-vs-row", par), colRows, rowRows, width)
						if colCtx.RowsTouched != rowCtx.RowsTouched {
							t.Errorf("par=%d: columnar RowsTouched %d != row %d",
								par, colCtx.RowsTouched, rowCtx.RowsTouched)
						}
					}
				})
			}
		}
	}
}

// Joins on a float column: NaN keys must match NaN (bit-pattern key
// equality) and -0.0 must not match 0.0, identically on both paths.
func TestColumnarJoinFloatKeySemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(0xF10A7))
	left := fuzzRel(rng, []string{"f", "a"}, []string{"float", "int"}, 800)
	right := fuzzRel(rng, []string{"rf", "b"}, []string{"float", "int"}, 700)
	rels := map[string]*relation.Relation{"L": left, "R": right}
	j := MustJoin(
		MustSelect(Scan("L", left.Schema()), expr.Ne(expr.Col("a"), expr.IntLit(-1))),
		MustSelect(Scan("R", right.Schema()), expr.Ne(expr.Col("b"), expr.IntLit(-1))),
		JoinSpec{Type: FullOuter, On: On("f", "rf"), Merge: true})
	width := j.Schema().NumCols()

	rowCtx := NewContext(rels)
	rowCtx.NoColumnar = true
	rowRows := drainIter(t, rowCtx, j)
	colRows := drainIter(t, NewContext(rels), j)
	requireSameRows(t, "float keys", colRows, rowRows, width)

	// Sanity: the fixture actually produced NaN matches (NaN never
	// matching would silently weaken the test).
	nan := 0
	for _, r := range rowRows {
		if v := r[0]; !v.IsNull() && math.IsNaN(v.AsFloat()) {
			nan++
		}
	}
	if nan == 0 {
		t.Fatal("fixture produced no NaN join keys; regenerate")
	}
}

// The columnar join must resolve keyed derived children through the same
// materialization as the row path, preserving upsert dedup and giving the
// derived relation a probeable primary-key index.
func TestColumnarJoinKeyedDerivedChild(t *testing.T) {
	ctx := fixtureCtx()
	// ProjectKeyed over Video: a keyed derived child (not a plain scan).
	keyed := MustProjectKeyed(Scan("Video", videoSchema()),
		[]Output{OutCol("videoId"), OutCol("duration")}, "videoId")
	j := MustJoin(
		MustSelect(Scan("Log", logSchema()), expr.Gt(expr.Col("sessionId"), expr.IntLit(0))),
		keyed, JoinSpec{On: On("videoId", "videoId"), Merge: true})
	width := j.Schema().NumCols()
	oracle, err := EvalMaterialized(j, fixtureCtx())
	if err != nil {
		t.Fatal(err)
	}
	got := drainIter(t, ctx, j)
	requireSameRows(t, "keyed derived", got, oracle.Rows(), width)
}

// An inner columnar join must keep the empty-side short-circuit: when the
// right side is empty, the left child is never evaluated.
func TestColumnarJoinEmptySideShortCircuit(t *testing.T) {
	empty := relation.New(videoSchema())
	log := fixtureCtx()
	rels := map[string]*relation.Relation{"Video": empty}
	lrel, _ := log.Relation("Log")
	rels["Log"] = lrel
	ctx := NewContext(rels)
	j := MustJoin(
		MustSelect(Scan("Log", logSchema()), expr.Gt(expr.Col("sessionId"), expr.IntLit(0))),
		MustSelect(Scan("Video", videoSchema()), expr.Gt(expr.Col("videoId"), expr.IntLit(0))),
		JoinSpec{On: On("videoId", "videoId"), Merge: true})
	rows := drainIter(t, ctx, j)
	if len(rows) != 0 {
		t.Fatalf("join over empty right side produced %d rows", len(rows))
	}
	// Only the right side's scan may have been touched.
	if ctx.RowsTouched != 0 {
		t.Fatalf("RowsTouched = %d; the left side should never run", ctx.RowsTouched)
	}
}

// Columnar set operators (Difference/Intersect left-stream filtering and
// keyed-union right filtering) must match the materialized oracle over
// hostile values, columnar and row, serial and parallel.
func TestColumnarSetOpsMatchMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5E70))
	// Overlapping fixtures: draw from the same distribution so Intersect
	// and Difference both have work to do.
	a := fuzzRel(rng, []string{"k", "s", "f"}, []string{"int", "str", "float"}, 2600)
	b := fuzzRel(rng, []string{"k", "s", "f"}, []string{"int", "str", "float"}, 2400)
	rels := map[string]*relation.Relation{"A": a, "B": b}
	derived := func(name string, rel *relation.Relation) Node {
		return MustSelect(Scan(name, rel.Schema()), expr.Ne(expr.Col("k"), expr.IntLit(-99)))
	}
	mk := map[string]func() Node{
		"difference": func() Node { return MustDifference(derived("A", a), derived("B", b)) },
		"intersect":  func() Node { return MustIntersect(derived("A", a), derived("B", b)) },
		"bag-union":  func() Node { return MustUnion(derived("A", a), derived("B", b)) },
	}
	for name, build := range mk {
		t.Run(name, func(t *testing.T) {
			plan := build()
			width := plan.Schema().NumCols()
			oracle, err := EvalMaterialized(plan, NewContext(rels))
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{0, 4} {
				for _, noCol := range []bool{false, true} {
					ctx := NewContext(rels)
					ctx.Parallelism = par
					ctx.NoColumnar = noCol
					got := drainIter(t, ctx, plan)
					requireSameRows(t, fmt.Sprintf("par=%d noCol=%v", par, noCol),
						got, oracle.Rows(), width)
				}
			}
		})
	}
}

// The columnar join must allocate O(1) objects per drain, not O(rows):
// ColSets, vectors, dictionaries, and output batches recycle through the
// pools, and the per-drain scratch (hash arrays, CSR chains, match-pair
// buffers) is a bounded number of slice allocations. A per-row allocation
// regression multiplies this by tens of thousands and fails loudly.
func TestColumnarJoinConstantAllocsPerDrain(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates and defeats sync.Pool; run without -race")
	}
	// Keyless inputs: keyed derived sides deliberately materialize through
	// resolvePipelined (upsert dedup), which allocates per row; the O(1)
	// contract is for the ColSet-drained bag sides the delta pipelines use.
	logSch := relation.NewSchema([]relation.Column{
		{Name: "sessionId", Type: relation.KindInt}, {Name: "videoId", Type: relation.KindInt}})
	vidSch := relation.NewSchema([]relation.Column{
		{Name: "vid", Type: relation.KindInt}, {Name: "ownerId", Type: relation.KindInt}})
	log, video := relation.New(logSch), relation.New(vidSch)
	for i := 0; i < 50000; i++ {
		log.MustInsert(relation.Row{relation.Int(int64(i)), relation.Int(int64(i * 7 % 5600))})
	}
	for i := 0; i < 5000; i++ {
		video.MustInsert(relation.Row{relation.Int(int64(i)), relation.Int(int64(i % 97))})
	}
	rels := map[string]*relation.Relation{"Log": log, "Video": video}
	plan := MustJoin(
		MustSelect(Scan("Log", logSch), expr.Gt(expr.Col("videoId"), expr.IntLit(10))),
		MustSelect(Scan("Video", vidSch), expr.Gt(expr.Col("vid"), expr.IntLit(-1))),
		JoinSpec{On: []EqPair{{Left: "videoId", Right: "vid"}}})
	drain := func() int {
		ctx := NewContext(rels)
		it := NewIterator(plan)
		if err := it.Open(ctx); err != nil {
			t.Fatal(err)
		}
		defer it.Close()
		n := 0
		for {
			b, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if b == nil {
				return n
			}
			n += b.Len()
			b.Release()
		}
	}
	rows := drain()
	if rows < 40000 {
		t.Fatalf("fixture too small: %d rows", rows)
	}
	allocs := testing.AllocsPerRun(5, func() { drain() })
	// ~dozens of bounded scratch slices per drain; 2000 leaves headroom
	// while still catching any per-row allocation (which would be ≥40000).
	if allocs >= 2000 {
		t.Fatalf("columnar join allocates %.0f objects per drain of %d rows; want O(1) scratch only",
			allocs, rows)
	}
}
