package algebra

import (
	"strings"
	"testing"

	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
)

// Fixtures mimic a maintenance plan's delta inputs: ΔLog/∇Log are keyless
// bags of inserted/deleted log rows, and deltaUnion is the signed-
// multiplicity union every view's plan re-scans.

func deltaCtx(epoch uint64) *Context {
	ins := relation.New(relation.NewSchema([]relation.Column{
		{Name: "sessionId", Type: relation.KindInt},
		{Name: "videoId", Type: relation.KindInt},
	}))
	for i := 0; i < 40; i++ {
		ins.MustInsert(relation.Row{relation.Int(int64(1000 + i)), relation.Int(int64(i % 5))})
	}
	del := relation.New(ins.Schema())
	for i := 0; i < 10; i++ {
		del.MustInsert(relation.Row{relation.Int(int64(1000 + i)), relation.Int(int64(i % 5))})
	}
	ctx := NewContext(map[string]*relation.Relation{"ΔLog": ins, "∇Log": del})
	ctx.Epoch = epoch
	return ctx
}

func deltaUnion() Node {
	schema := relation.NewSchema([]relation.Column{
		{Name: "sessionId", Type: relation.KindInt},
		{Name: "videoId", Type: relation.KindInt},
	})
	side := func(name string, mult int64) Node {
		return MustProject(Scan(name, schema), []Output{
			Out("sessionId", expr.Col("sessionId")),
			Out("videoId", expr.Col("videoId")),
			Out("__mult", expr.IntLit(mult)),
		})
	}
	return MustUnion(side("ΔLog", 1), side("∇Log", -1))
}

func testPolicy() CachePolicy {
	return CachePolicy{
		Stable: func(string) bool { return true },
		Delta: func(name string) bool {
			return strings.HasPrefix(name, "Δ") || strings.HasPrefix(name, "∇")
		},
	}
}

func TestFingerprintCanonical(t *testing.T) {
	a, b := deltaUnion(), deltaUnion()
	if CanonicalString(a) != CanonicalString(b) {
		t.Fatalf("structurally identical plans encode differently:\n%s\n%s",
			CanonicalString(a), CanonicalString(b))
	}
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("identical encodings hash differently")
	}
	// A differing predicate must change the encoding.
	c := MustSelect(deltaUnion(), expr.Gt(expr.Col("videoId"), expr.IntLit(2)))
	d := MustSelect(deltaUnion(), expr.Gt(expr.Col("videoId"), expr.IntLit(3)))
	if CanonicalString(c) == CanonicalString(d) {
		t.Fatal("different predicates share a canonical encoding")
	}
}

func TestCacheSubplansWrapsDeltaBreakers(t *testing.T) {
	plan := MustGroupBy(deltaUnion(), []string{"videoId"},
		SumAs(expr.Col("__mult"), "m"))
	shared := CacheSubplans(plan, testPolicy())
	cachedCount := 0
	Walk(shared, func(n Node) {
		if _, ok := n.(*CachedNode); ok {
			cachedCount++
		}
	})
	if cachedCount != 2 { // the union and the group-by above it
		t.Fatalf("want 2 CachedNodes (union + group-by), got %d:\n%s", cachedCount, Format(shared))
	}
	// A plan reading an unstable binding (the stale view) must not wrap it.
	stale := MustDifference(
		Scan("§V", relation.NewSchema([]relation.Column{{Name: "videoId", Type: relation.KindInt}}, "videoId")),
		MustProject(deltaUnion(), []Output{Out("videoId", expr.Col("videoId"))}))
	pol := testPolicy()
	pol.Stable = func(name string) bool { return !strings.HasPrefix(name, "§") }
	rewritten := CacheSubplans(stale, pol)
	if _, ok := rewritten.(*CachedNode); ok {
		t.Fatal("subtree reading the stale view must not be cached")
	}
}

// Shared-cache evaluation must (1) produce rows identical to plain
// evaluation, (2) register hits on the second consumer, and (3) touch
// fewer rows on the hit than on the miss.
func TestSharedSubplanEquivalenceAndHits(t *testing.T) {
	for _, noCol := range []bool{false, true} {
		viewA := MustGroupBy(deltaUnion(), []string{"videoId"}, SumAs(expr.Col("__mult"), "m"))
		viewB := MustGroupBy(deltaUnion(), []string{"videoId"}, SumAs(expr.Col("__mult"), "n"), CountAs("c"))

		sharedA := CacheSubplans(viewA, testPolicy())
		sharedB := CacheSubplans(viewB, testPolicy())

		plainCtx := deltaCtx(0)
		plainCtx.NoColumnar = noCol
		wantA := mustEval(t, viewA, plainCtx)
		wantB := mustEval(t, viewB, plainCtx)

		cache := NewSubplanCache(7)
		ctx := deltaCtx(7)
		ctx.NoColumnar = noCol
		ctx.Subplans = cache
		gotA := mustEval(t, sharedA, ctx)
		missTouched := ctx.RowsTouched
		gotB := mustEval(t, sharedB, ctx)
		hitTouched := ctx.RowsTouched - missTouched

		for _, p := range []struct{ want, got *relation.Relation }{{wantA, gotA}, {wantB, gotB}} {
			p.want.SortByKey()
			p.got.SortByKey()
			if !p.want.Equal(p.got) {
				t.Fatalf("noColumnar=%v: shared evaluation differs:\nwant\n%v\ngot\n%v",
					noCol, p.want, p.got)
			}
		}
		hits, misses, saved := cache.Stats()
		if hits == 0 {
			t.Fatalf("noColumnar=%v: second consumer registered no cache hits (misses=%d)", noCol, misses)
		}
		if saved <= 0 {
			t.Fatalf("noColumnar=%v: rowsSaved = %d, want > 0", noCol, saved)
		}
		if hitTouched >= missTouched {
			t.Fatalf("noColumnar=%v: hit evaluation touched %d rows, miss touched %d — no work saved",
				noCol, hitTouched, missTouched)
		}
		cache.Release()
	}
}

// A cache built for one catalog epoch must never serve a context pinned to
// another: evaluation silently degrades to pass-through and recomputes.
func TestStaleEpochCacheBypassed(t *testing.T) {
	view := MustGroupBy(deltaUnion(), []string{"videoId"}, SumAs(expr.Col("__mult"), "m"))
	shared := CacheSubplans(view, testPolicy())

	cache := NewSubplanCache(7)
	warm := deltaCtx(7)
	warm.Subplans = cache
	mustEval(t, shared, warm)

	// New epoch: bindings changed, cache is stale.
	ctx := deltaCtx(8)
	ctx.Subplans = cache
	got := mustEval(t, shared, ctx)
	want := mustEval(t, view, deltaCtx(0))
	want.SortByKey()
	got.SortByKey()
	if !want.Equal(got) {
		t.Fatalf("stale-epoch evaluation differs:\nwant\n%v\ngot\n%v", want, got)
	}
	hits, _, _ := cache.Stats()
	if hits != 0 {
		t.Fatalf("stale cache served %d hits across epochs", hits)
	}
	// Unversioned contexts (Epoch 0) must bypass too.
	unversioned := deltaCtx(0)
	unversioned.Subplans = cache
	mustEval(t, shared, unversioned)
	if h, _, _ := cache.Stats(); h != 0 {
		t.Fatalf("unversioned context served %d hits", h)
	}
	cache.Release()
}

// A fingerprint collision (same hash, different canonical encoding) must
// read as a miss, never serve the colliding entry.
func TestFingerprintCollisionIsMiss(t *testing.T) {
	cache := NewSubplanCache(1)
	set := relation.GetColSet(1)
	cache.store(42, "plan-a", set, 0)
	if e := cache.lookup(42, "plan-b"); e != nil {
		t.Fatal("colliding canonical encodings must miss")
	}
	if e := cache.lookup(42, "plan-a"); e == nil {
		t.Fatal("exact encoding must hit")
	}
	cache.Release()
}
