package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem seam the log writes through. Every durability
// boundary the WAL depends on — record writes, fsyncs, segment creation,
// checkpoint renames, compaction removals, directory syncs — goes through
// this interface, so the fault-injection filesystem (MemFS) can error or
// crash at each one and the recovery tests can prove no boundary is
// load-bearing without a sync.
//
// Paths are passed through verbatim; implementations may interpret them
// relative to their own root.
type FS interface {
	// MkdirAll creates the log directory (and parents).
	MkdirAll(dir string) error
	// Create opens a new file for writing, truncating any existing one.
	Create(name string) (File, error)
	// Open opens an existing file for reading.
	Open(name string) (File, error)
	// ReadDir lists the file names (not paths) inside dir, sorted.
	ReadDir(dir string) ([]string, error)
	// Remove deletes a file. The deletion is durable only after SyncDir.
	Remove(name string) error
	// Rename atomically replaces newpath with oldpath. Durable only after
	// SyncDir.
	Rename(oldpath, newpath string) error
	// SyncDir makes the directory's entries (creates, renames, removals)
	// durable.
	SyncDir(dir string) error
}

// File is one log file: sequential reads or writes plus an explicit
// durability point.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync makes all written bytes durable (fsync).
	Sync() error
}

// OSFS is the production FS: thin wrappers over package os. Directory
// syncs open the directory and fsync it, which is how POSIX makes entry
// operations (create/rename/remove) durable.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create implements FS.
func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

// Open implements FS.
func (OSFS) Open(name string) (File, error) { return os.Open(name) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// SyncDir implements FS.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
