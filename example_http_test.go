package svc_test

import (
	"context"
	"fmt"
	"time"

	svc "github.com/sampleclean/svc"
	"github.com/sampleclean/svc/client"
	"github.com/sampleclean/svc/server"
)

// Example_svcqlOverHTTP serves the running example over HTTP: an svcd
// server on a loopback port, a view created from svcql text over the
// wire, and queries answered with estimates, confidence intervals, and
// staleness metadata — the full network serving path. (A 100% "sample"
// keeps the output deterministic; production uses small ratios.)
func Example_svcqlOverHTTP() {
	d := svc.NewDatabase()
	logT := d.MustCreate("Log", svc.NewSchema([]svc.Column{
		svc.Col("sessionId", svc.KindInt),
		svc.Col("videoId", svc.KindInt),
	}, "sessionId"))
	for i := 0; i < 1000; i++ {
		logT.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(int64(i % 20))})
	}

	srv := server.New(d, server.Config{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		panic(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	c := client.New(srv.Addr())
	created, err := c.CreateView(`
		CREATE VIEW visitView AS
		SELECT videoId, COUNT(1) AS visitCount
		FROM Log GROUP BY videoId`, 1.0)
	if err != nil {
		panic(err)
	}
	fmt.Println("view:", created.View, created.Rows, "rows,", created.Strategy)

	// 250 new visits arrive after materialization: the view is stale.
	for i := 0; i < 250; i++ {
		if err := logT.StageInsert(svc.Row{svc.Int(int64(1000 + i)), svc.Int(int64(i % 20))}); err != nil {
			panic(err)
		}
	}

	resp, err := c.Query(`SELECT SUM(visitCount) FROM visitView`)
	if err != nil {
		panic(err)
	}
	fmt.Printf("stale: %.0f, estimate: %.0f, pending deltas: %v\n",
		*resp.StaleValue, resp.Estimate.Value, resp.Pending)

	// Base-table SELECTs run through the batched pipeline instead.
	rows, err := c.Query(`SELECT sessionId, videoId FROM Log WHERE sessionId < 2`)
	if err != nil {
		panic(err)
	}
	fmt.Println("kind:", rows.Kind, "rows:", rows.Rows)
	// Output:
	// view: visitView 20 rows, change-table
	// stale: 1000, estimate: 1250, pending deltas: true
	// kind: rows rows: [[0 0] [1 1]]
}
