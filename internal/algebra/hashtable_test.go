package algebra

import (
	"fmt"
	"testing"

	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
)

// TestHashIdxChains exercises the open-addressed multimap directly:
// insertion-order chains, multiple hashes per table, slot growth.
func TestHashIdxChains(t *testing.T) {
	next := make([]int32, 64)
	idx := newHashIdx(2, next) // deliberately undersized to force growth
	always := func(int32) bool { return true }
	for i := 0; i < 64; i++ {
		idx.add(uint64(1+i%4), int32(i), always) // 4 hashes, 16 ids each
	}
	for h := uint64(1); h <= 4; h++ {
		var got []int32
		for id := idx.first(h, always); id >= 0; id = idx.next[id] {
			got = append(got, id)
		}
		if len(got) != 16 {
			t.Fatalf("hash %d: chain length %d, want 16", h, len(got))
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("hash %d: chain not in insertion order: %v", h, got)
			}
		}
	}
	if idx.first(99, always) != -1 {
		t.Error("absent hash should probe to -1")
	}
}

// TestRowTableCollisionFallback forces distinct keys onto one 64-bit
// hash and checks that verification — not the hash — decides membership:
// seeded collisions can share a chain but never merge keys.
func TestRowTableCollisionFallback(t *testing.T) {
	rows := []relation.Row{
		{relation.Int(1), relation.String("a")},
		{relation.Int(2), relation.String("b")},
		{relation.Int(1), relation.String("dup-of-0")},
	}
	idx := []int{0}
	tab := &rowTable{
		rows:   rows,
		idx:    idx,
		hashes: []uint64{7, 7, 7}, // all colliding
		next:   make([]int32, len(rows)),
		parts:  []*hashIdx{newHashIdx(4, nil)},
		packed: make([][]int32, 1),
	}
	tab.parts[0].next = tab.next
	var cur int32
	sameKey := func(head int32) bool {
		return rows[head].KeyEqualCols(idx, rows[cur], idx)
	}
	count := 0
	for i, h := range tab.hashes {
		cur = int32(i)
		tab.parts[0].add(h, cur, sameKey)
		count++
	}
	tab.finalizePart(0, count)

	probe := func(key int64) []int32 {
		p := relation.Row{relation.Int(key)}
		return tab.lookup(7, p, []int{0})
	}
	if got := probe(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("probe(1) = %v, want [0 2]", got)
	}
	if got := probe(2); len(got) != 1 || got[0] != 1 {
		t.Errorf("probe(2) = %v, want [1]", got)
	}
	if got := probe(3); got != nil {
		t.Errorf("probe(3) = %v, want none (collision must not fabricate a match)", got)
	}
}

// TestGroupByKindStrictness pins that grouping uses encoding identity,
// not SQL numeric equality: Int(2) and Float(2.0) in an untyped column
// are distinct groups (they have distinct canonical encodings).
func TestGroupByKindStrictness(t *testing.T) {
	sch := relation.NewSchema([]relation.Column{
		{Name: "id", Type: relation.KindInt},
		{Name: "g", Type: relation.KindNull}, // untyped: admits mixed kinds
	}, "id")
	rel := relation.New(sch)
	rel.MustInsert(relation.Row{relation.Int(1), relation.Int(2)})
	rel.MustInsert(relation.Row{relation.Int(2), relation.Float(2)})
	rel.MustInsert(relation.Row{relation.Int(3), relation.Int(2)})
	ctx := NewContext(map[string]*relation.Relation{"T": rel})
	out := mustEval(t, MustGroupBy(Scan("T", sch), []string{"g"}, CountAs("n")), ctx)
	if out.Len() != 2 {
		t.Fatalf("got %d groups, want 2 (Int(2) and Float(2.0) must not merge): %v", out.Len(), out)
	}
}

// bigFixture builds Log/Video-shaped relations large enough to cross the
// parallel threshold.
func bigFixture(nLog, nVideo int) (*relation.Relation, *relation.Relation) {
	video := relation.New(videoSchema())
	for i := 0; i < nVideo; i++ {
		video.MustInsert(relation.Row{
			relation.Int(int64(i)), relation.Int(int64(i % 97)), relation.Float(float64(i%11) / 2)})
	}
	log := relation.New(logSchema())
	for i := 0; i < nLog; i++ {
		log.MustInsert(relation.Row{
			relation.Int(int64(i)), relation.Int(int64(i * 7 % (nVideo + nVideo/8)))}) // ~12% dangling
	}
	return log, video
}

// evalBoth evaluates the plan serially and with 4 workers and requires
// identical results — the determinism contract of parallel mode.
func evalBoth(t *testing.T, plan Node, rels map[string]*relation.Relation) {
	t.Helper()
	serialCtx := NewContext(rels)
	serial := mustEval(t, plan, serialCtx)
	parCtx := NewContext(rels)
	parCtx.Parallelism = 4
	par := mustEval(t, plan, parCtx)
	if !serial.Equal(par) {
		t.Fatalf("parallel result differs from serial for %s:\nserial: %v\nparallel: %v",
			plan, serial, par)
	}
	if serialCtx.RowsTouched != parCtx.RowsTouched {
		t.Errorf("RowsTouched differs: serial %d, parallel %d", serialCtx.RowsTouched, parCtx.RowsTouched)
	}
	// Keyless outputs compare order-sensitively in Equal; for keyed
	// outputs additionally require identical row order (chunk concat and
	// first-occurrence merge make parallel order deterministic).
	for i := 0; i < serial.Len(); i++ {
		if !serial.Row(i).Equal(par.Row(i)) {
			t.Fatalf("row order differs at %d: %v vs %v", i, serial.Row(i), par.Row(i))
		}
	}
}

// TestParallelMatchesSerial runs every parallelized operator shape over
// inputs above the parallel threshold and requires byte-identical output.
func TestParallelMatchesSerial(t *testing.T) {
	log, video := bigFixture(6000, 3000)
	rels := map[string]*relation.Relation{"Log": log, "Video": video}

	t.Run("hash-join-inner", func(t *testing.T) {
		// Join on a non-indexed column pair to force the hash-join path.
		plan := MustJoin(Scan("Log", logSchema()), Alias(Scan("Video", videoSchema()), "v"),
			JoinSpec{On: []EqPair{{Left: "videoId", Right: "v.ownerId"}}})
		evalBoth(t, plan, rels)
	})
	t.Run("hash-join-full-outer", func(t *testing.T) {
		plan := MustJoin(Scan("Log", logSchema()), Scan("Video", videoSchema()),
			JoinSpec{Type: FullOuter, On: On("videoId", "videoId"), Merge: true})
		evalBoth(t, plan, rels)
	})
	t.Run("hash-join-residual", func(t *testing.T) {
		plan := MustJoin(Scan("Log", logSchema()), Scan("Video", videoSchema()),
			JoinSpec{On: On("videoId", "videoId"), Merge: true,
				Extra: expr.Gt(expr.Col("duration"), expr.FloatLit(1))})
		evalBoth(t, plan, rels)
	})
	t.Run("index-probe", func(t *testing.T) {
		video.BuildIndex([]int{0}) // secondary index on videoId
		plan := MustJoin(Scan("Log", logSchema()), Scan("Video", videoSchema()),
			JoinSpec{On: On("videoId", "videoId"), Merge: true})
		evalBoth(t, plan, rels)
	})
	t.Run("group-by", func(t *testing.T) {
		plan := MustGroupBy(Scan("Log", logSchema()), []string{"videoId"},
			CountAs("visits"), SumAs(expr.Col("sessionId"), "sum"), MinAs(expr.Col("sessionId"), "min"))
		evalBoth(t, plan, rels)
	})
	t.Run("hash-filter", func(t *testing.T) {
		plan := MustHashFilter(Scan("Log", logSchema()), []string{"sessionId"}, 0.25, nil)
		evalBoth(t, plan, rels)
	})
	t.Run("difference", func(t *testing.T) {
		half := relation.New(logSchema())
		for i := 0; i < 3000; i++ {
			half.MustInsert(log.Row(i).Clone())
		}
		rels2 := map[string]*relation.Relation{"Log": log, "Half": half}
		plan := MustDifference(Scan("Log", logSchema()), Scan("Half", logSchema()))
		evalBoth(t, plan, rels2)
	})
}

// TestJoinNullKeysStillSkipped re-checks SQL NULL-join semantics on the
// hash64 path: NULL keys match nothing but left-outer rows survive.
func TestJoinNullKeysStillSkipped(t *testing.T) {
	lsch := relation.NewSchema([]relation.Column{
		{Name: "lid", Type: relation.KindInt}, {Name: "k", Type: relation.KindInt}}, "lid")
	rsch := relation.NewSchema([]relation.Column{
		{Name: "rid", Type: relation.KindInt}, {Name: "rk", Type: relation.KindInt}}, "rid")
	l := relation.New(lsch)
	l.MustInsert(relation.Row{relation.Int(1), relation.Null()})
	l.MustInsert(relation.Row{relation.Int(2), relation.Int(5)})
	r := relation.New(rsch)
	r.MustInsert(relation.Row{relation.Int(10), relation.Null()})
	r.MustInsert(relation.Row{relation.Int(11), relation.Int(5)})
	rels := map[string]*relation.Relation{"L": l, "R": r}

	inner := mustEval(t, MustJoin(Scan("L", lsch), Scan("R", rsch),
		JoinSpec{On: []EqPair{{Left: "k", Right: "rk"}}}), NewContext(rels))
	if inner.Len() != 1 {
		t.Fatalf("inner join with NULL keys: %d rows, want 1:\n%v", inner.Len(), inner)
	}
	left := mustEval(t, MustJoin(Scan("L", lsch), Scan("R", rsch),
		JoinSpec{Type: LeftOuter, On: []EqPair{{Left: "k", Right: "rk"}}}), NewContext(rels))
	if left.Len() != 2 {
		t.Fatalf("left outer join with NULL keys: %d rows, want 2:\n%v", left.Len(), left)
	}
}

// TestWorkersGate checks the parallel gating arithmetic.
func TestWorkersGate(t *testing.T) {
	cases := []struct {
		parallelism, rows, want int
	}{
		{0, 1 << 20, 1},
		{1, 1 << 20, 1},
		{4, 100, 1},             // under parallelMinRows
		{4, parallelMinRows, 4}, // at threshold
		{64, 4096, 8},           // clamped so chunks stay ≥ parallelMinChunk
		{1000, 1 << 20, 256},    // hard cap
		{3, parallelMinRows, 3}, // odd counts pass through
		{2, parallelMinRows - 1, 1},
	}
	for _, c := range cases {
		ctx := NewContext(nil)
		ctx.Parallelism = c.parallelism
		if got := ctx.workers(c.rows); got != c.want {
			t.Errorf("workers(parallelism=%d, rows=%d) = %d, want %d", c.parallelism, c.rows, got, c.want)
		}
	}
}

// TestHashIdxManyHashes drives slot growth hard enough to hit several
// rehashes with verified chains afterwards.
func TestHashIdxManyHashes(t *testing.T) {
	idx := newHashIdx(1, nil)
	always := func(int32) bool { return true }
	const n = 10000
	for i := 0; i < n; i++ {
		idx.addGrow(uint64(i)*0x9e3779b97f4a7c15+1, int32(i), always)
	}
	for i := 0; i < n; i++ {
		h := uint64(i)*0x9e3779b97f4a7c15 + 1
		if got := idx.first(h, always); got != int32(i) {
			t.Fatalf("first(%d) = %d, want %d", i, got, i)
		}
	}
	if idx.first(0, always) != -1 {
		t.Error("first(0) should be -1")
	}
	_ = fmt.Sprint(idx.used) // silence unused in case of future edits
}
