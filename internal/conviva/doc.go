// Package conviva substitutes the paper's proprietary Conviva workload
// (Section 7.5): 1 TB of video-distribution activity logs and eight
// summary-statistics views, of which the paper discloses only the shapes
// (Appendix 12.6.2). We generate a synthetic denormalized activity log
// with Zipfian user/resource popularity and long-tailed transfer sizes,
// define the same eight view shapes, and model updates as appended log
// records in arrival order — exercising the same code paths (sampled
// cleaning of distributed-style aggregate views) at laptop scale.
//
// Concurrency contract: the generator holds private RNG state and is not
// safe for concurrent use; generate the workload single-threaded, then
// serve the resulting database under package db's snapshot contract. The
// returned view definitions are immutable.
package conviva
