package shard

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/sampleclean/svc/internal/hashing"
	"github.com/sampleclean/svc/internal/relation"
)

// Seed is the fixed seed of the placement hash. It is part of the
// cluster's wire contract: every shard and every router must derive the
// same shard for the same key, across processes and restarts, so the
// seed is a constant rather than per-process.
const Seed uint64 = 0x5ca1ab1e_0ddba11

// Key names the placement columns of one relation: where they sit in a
// full row (RowIdx) and, when the placement key is a prefix of the
// primary key, where they sit in the primary-key tuple (KeyIdx) so
// deletes carrying only key values can still be routed. KeyIdx nil
// means deletes against this table are not routable by the router.
type Key struct {
	Cols   []string
	RowIdx []int
	KeyIdx []int
}

// Placement is the deterministic partitioning contract of a fleet:
// which base tables partition (and by which columns), which views they
// produce, and how many shards there are. Tables absent from Tables are
// replicated on every shard (dimension tables small enough to copy).
//
// The invariant the estimator merge relies on: every view key lives on
// exactly one shard. Base tables co-partition by a common prefix of the
// view key, so each shard's view, cleaned sample, and WAL hold a
// disjoint slice of the global view — per-shard estimates then compose
// by summing means and variances (see internal/estimator.Partial).
type Placement struct {
	Count  int
	Tables map[string]Key
	Views  map[string]Key
}

// ShardOf maps a placement hash to a shard id.
func (p Placement) ShardOf(h uint64) int {
	if p.Count <= 1 {
		return 0
	}
	return int(h % uint64(p.Count))
}

// HashValues computes the placement hash of a key tuple. The encoding
// is canonical across value representations: an integral float hashes
// identically to the same integer, so a JSON-decoded 5 (float64) and an
// engine-side Int(5) agree — see HashJSON.
func HashValues(vals ...relation.Value) uint64 {
	h := hashing.Init64(Seed)
	for _, v := range vals {
		h = addValue(h, v)
	}
	return hashing.Finish64(h)
}

func addValue(h uint64, v relation.Value) uint64 {
	switch v.Kind() {
	case relation.KindNull:
		return hashing.AddByte64(h, 'n')
	case relation.KindInt:
		return addInt(h, v.AsInt())
	case relation.KindFloat:
		return addFloat(h, v.AsFloat())
	case relation.KindBool:
		b := byte(0)
		if v.AsBool() {
			b = 1
		}
		return hashing.AddByte64(hashing.AddByte64(h, 'b'), b)
	default:
		return hashing.AddString64(hashing.AddByte64(h, 's'), v.AsString())
	}
}

func addInt(h uint64, i int64) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(i))
	return hashing.AddBytes64(hashing.AddByte64(h, 'i'), buf[:])
}

func addFloat(h uint64, f float64) uint64 {
	// Integral floats canonicalize to the integer encoding: JSON has only
	// one number type, so a routed op's 5 must land where Int(5) lives.
	if f == math.Trunc(f) && math.Abs(f) < 1<<53 {
		return addInt(h, int64(f))
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	return hashing.AddBytes64(hashing.AddByte64(h, 'f'), buf[:])
}

// HashJSON computes the placement hash of a JSON-decoded key tuple
// (float64, string, bool, nil), canonically equal to HashValues over
// the engine-side values the tuple coerces to.
func HashJSON(vals []any) (uint64, error) {
	h := hashing.Init64(Seed)
	for _, v := range vals {
		switch x := v.(type) {
		case nil:
			h = hashing.AddByte64(h, 'n')
		case float64:
			h = addFloat(h, x)
		case string:
			h = hashing.AddString64(hashing.AddByte64(h, 's'), x)
		case bool:
			b := byte(0)
			if x {
				b = 1
			}
			h = hashing.AddByte64(hashing.AddByte64(h, 'b'), b)
		default:
			return 0, fmt.Errorf("shard: unhashable placement value %T", v)
		}
	}
	return hashing.Finish64(h), nil
}

// RowShard returns the shard owning a full row of the table, or ok=false
// when the table is replicated (every shard owns a copy).
func (p Placement) RowShard(table string, row relation.Row) (int, bool) {
	k, ok := p.Tables[table]
	if !ok {
		return 0, false
	}
	vals := make([]relation.Value, len(k.RowIdx))
	for i, idx := range k.RowIdx {
		vals[i] = row[idx]
	}
	return p.ShardOf(HashValues(vals...)), true
}

// Owns reports whether shard id holds this row: the owning shard for a
// partitioned table, every shard for a replicated one. Dataset loaders
// filter with it, so placement is re-derivable from (Placement, row)
// alone — no placement state is stored anywhere.
func (p Placement) Owns(table string, row relation.Row, id int) bool {
	s, partitioned := p.RowShard(table, row)
	return !partitioned || s == id
}

// Videolog is the videolog dataset's placement: Log and Video
// co-partition by videoId (the view-key prefix of visitView), so every
// (videoId, ownerId) view key lives on exactly one shard. Log's primary
// key is sessionId, which does not determine placement — deletes by key
// are not routable (KeyIdx nil).
func Videolog(count int) Placement {
	return Placement{
		Count: count,
		Tables: map[string]Key{
			"Log":   {Cols: []string{"videoId"}, RowIdx: []int{1}},
			"Video": {Cols: []string{"videoId"}, RowIdx: []int{0}, KeyIdx: []int{0}},
		},
		Views: map[string]Key{
			"visitView": {Cols: []string{"videoId"}},
		},
	}
}

// TPCD is the TPC-D dataset's placement: lineitem and orders
// co-partition by order key (the join view's key prefix); the dimension
// tables (customer, supplier, part, nation, region) are replicated.
func TPCD(count int) Placement {
	return Placement{
		Count: count,
		Tables: map[string]Key{
			"lineitem": {Cols: []string{"l_orderkey"}, RowIdx: []int{0}, KeyIdx: []int{0}},
			"orders":   {Cols: []string{"o_orderkey"}, RowIdx: []int{0}, KeyIdx: []int{0}},
		},
		Views: map[string]Key{
			"joinView": {Cols: []string{"l_orderkey"}},
		},
	}
}

// ByDataset returns the named dataset's placement, or an error listing
// the known ones.
func ByDataset(name string, count int) (Placement, error) {
	switch name {
	case "videolog":
		return Videolog(count), nil
	case "tpcd":
		return TPCD(count), nil
	default:
		return Placement{}, fmt.Errorf("shard: no placement for dataset %q (want videolog or tpcd)", name)
	}
}
