package algebra

import (
	"github.com/sampleclean/svc/internal/relation"
)

// This file is the hash-table substrate shared by the hash join, the
// group-by, and the set operators. Instead of materializing a Go string
// per row (Row.KeyOf) and probing map[string] tables, operators hash the
// key columns directly to 64 bits (relation.Row.HashCols), place rows in
// open-addressed tables, and resolve collisions against the full
// canonical encoding (relation.Row.KeyEqualCols).
//
// A slot belongs to one distinct key: inserting a row whose hash matches
// an occupied slot but whose key differs (a genuine 64-bit collision)
// walks to the next slot, and lookups walk the same way. Rows sharing a
// key form an insertion-ordered chain hanging off their slot. The effect
// is one key verification per probe — not per candidate — so duplicate-
// heavy keys (the common case in join build sides and group-by) cost the
// same as in a string map, while collisions can never merge distinct
// keys.

// tableSeed seeds the operators' internal key hashing. The value is
// arbitrary but fixed: plans must be deterministic across runs.
const tableSeed uint64 = 0x53564331 // "SVC1"

// keyHash returns the remapped 64-bit key hash of row's idx columns. The
// hash is never 0 — 0 is reserved as the "row excluded" sentinel in
// precomputed hash arrays.
func keyHash(row relation.Row, idx []int) uint64 {
	h := row.HashCols(idx, tableSeed)
	if h == 0 {
		h = 1
	}
	return h
}

// joinHash is keyHash with SQL join semantics: a NULL in any key column
// returns 0 (NULL never matches, so the row never enters or hits a
// table).
func joinHash(row relation.Row, idx []int) uint64 {
	for _, i := range idx {
		if row[i].IsNull() {
			return 0
		}
	}
	return keyHash(row, idx)
}

// hashIdx is the open-addressed slot array: hash plus the first and last
// id of the slot's chain. Chains are singly linked through a next array
// that may be owned (dense ids, addGrow) or shared between partition
// tables (caller-allocated). Key comparison is delegated to the caller
// through a match predicate, keeping the structure agnostic of what an
// id refers to (a row position for joins, a group number for γ).
type hashIdx struct {
	mask uint64
	hash []uint64 // slot -> hash (valid when head >= 0)
	head []int32  // slot -> first id of chain, -1 when empty
	tail []int32  // slot -> last id of chain
	used int      // occupied slots
	next []int32  // id -> next id in its chain, -1 at the end
}

// newHashIdx sizes a table for about idHint distinct keys. next is the
// chain storage to share; pass nil to let the table own and grow its
// chains via addGrow.
func newHashIdx(idHint int, next []int32) *hashIdx {
	capacity := 8
	for capacity < 2*idHint {
		capacity <<= 1
	}
	t := &hashIdx{
		mask: uint64(capacity - 1),
		hash: make([]uint64, capacity),
		head: make([]int32, capacity),
		tail: make([]int32, capacity),
		next: next,
	}
	for i := range t.head {
		t.head[i] = -1
	}
	return t
}

// add appends id under hash h: to the chain of the slot whose head
// sameKey(head) accepts, or to a fresh slot. next[id] must be
// addressable.
func (t *hashIdx) add(h uint64, id int32, sameKey func(head int32) bool) {
	if 4*(t.used+1) > 3*len(t.head) {
		t.grow()
	}
	i := h & t.mask
	for {
		head := t.head[i]
		if head < 0 {
			t.used++
			t.hash[i] = h
			t.head[i] = id
			break
		}
		if t.hash[i] == h && sameKey(head) {
			t.next[t.tail[i]] = id
			break
		}
		i = (i + 1) & t.mask
	}
	t.tail[i] = id
	t.next[id] = -1
}

// addGrow is add for tables that own their chain storage: ids must be
// added densely (0, 1, 2, …).
func (t *hashIdx) addGrow(h uint64, id int32, sameKey func(head int32) bool) {
	t.next = append(t.next, -1)
	t.add(h, id, sameKey)
}

// first returns the chain head whose hash is h and whose key
// sameKey(head) accepts, or -1. Exactly one sameKey call succeeds per
// hit; collisions cost extra slot hops, never false matches.
func (t *hashIdx) first(h uint64, sameKey func(head int32) bool) int32 {
	i := h & t.mask
	for {
		head := t.head[i]
		if head < 0 {
			return -1
		}
		if t.hash[i] == h && sameKey(head) {
			return head
		}
		i = (i + 1) & t.mask
	}
}

// grow doubles the slot arrays, re-placing slots. Chains (next) are
// untouched; two colliding keys simply land on distinct slots again.
func (t *hashIdx) grow() {
	oldHash, oldHead, oldTail := t.hash, t.head, t.tail
	capacity := 2 * len(oldHead)
	t.mask = uint64(capacity - 1)
	t.hash = make([]uint64, capacity)
	t.head = make([]int32, capacity)
	t.tail = make([]int32, capacity)
	for i := range t.head {
		t.head[i] = -1
	}
	for s, hd := range oldHead {
		if hd < 0 {
			continue
		}
		i := oldHash[s] & t.mask
		for t.head[i] >= 0 {
			i = (i + 1) & t.mask
		}
		t.hash[i] = oldHash[s]
		t.head[i] = hd
		t.tail[i] = oldTail[s]
	}
}

// rowTable is a (possibly partitioned) hash table over the key columns of
// a row set — the build side of a hash join or the membership side of a
// set operator. Partition p owns the rows whose hash ≡ p (mod
// partitions); all partitions share one chain array, which is safe
// because a key's rows never cross partitions.
//
// After the build, each partition's chains are packed into a contiguous
// ids array (CSR layout) and the slot arrays are repurposed as span
// bounds, so a probe returns a subslice to iterate sequentially — no
// pointer chasing on the probe side.
type rowTable struct {
	rows   []relation.Row
	idx    []int
	hashes []uint64 // per-row key hash; 0 = excluded (NULL join key)
	parts  []*hashIdx
	next   []int32   // shared chain storage (build phase only)
	packed [][]int32 // per partition: ids grouped by key, row order within key
}

// rowHashes computes the per-row key hashes, in parallel chunks when
// workers > 1. skipNull applies SQL join semantics (NULL key ⇒ excluded,
// hash 0).
func rowHashes(rows []relation.Row, idx []int, skipNull bool, workers int) []uint64 {
	hashes := make([]uint64, len(rows))
	eachChunk(workers, len(rows), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if skipNull {
				hashes[i] = joinHash(rows[i], idx)
			} else {
				hashes[i] = keyHash(rows[i], idx)
			}
		}
	})
	return hashes
}

// buildRowTable hashes and places every row. With workers > 1 the table
// is partitioned by hash and built by one goroutine per partition; the
// result is identical to the serial table (same slots-per-key, same
// chain order) because a key's rows all live in one partition and are
// placed in row order.
func buildRowTable(rows []relation.Row, idx []int, skipNull bool, workers int) *rowTable {
	t := &rowTable{
		rows:   rows,
		idx:    idx,
		hashes: rowHashes(rows, idx, skipNull, workers),
		next:   make([]int32, len(rows)),
		parts:  make([]*hashIdx, workers),
		packed: make([][]int32, workers),
	}
	parts := uint64(workers)
	runWorkers(workers, func(p int) {
		ht := newHashIdx(len(rows)/workers+1, t.next)
		var id int32
		count := 0
		sameKey := func(head int32) bool {
			return t.rows[head].KeyEqualCols(idx, t.rows[id], idx)
		}
		for i, h := range t.hashes {
			if h != 0 && (workers == 1 || h%parts == uint64(p)) {
				id = int32(i)
				ht.add(h, id, sameKey)
				count++
			}
		}
		t.parts[p] = ht
		t.finalizePart(p, count)
	})
	return t
}

// finalizePart packs partition p's chains into a contiguous ids array and
// repurposes the slot head/tail as [start, end) bounds into it. Chains
// are walked in insertion order, so a key's span preserves row order.
func (t *rowTable) finalizePart(p, count int) {
	t.packed[p] = packChains(t.parts[p], t.next, count)
}

// lookup returns the packed row positions holding probe's key (verified
// against the full encoding, once per probe), or nil. The returned slice
// aliases the table; iterate, don't retain.
func (t *rowTable) lookup(h uint64, probe relation.Row, probeIdx []int) []int32 {
	if h == 0 {
		return nil
	}
	p := h % uint64(len(t.parts))
	part := t.parts[p]
	packed := t.packed[p]
	i := h & part.mask
	for {
		if part.head[i] < 0 { // slot never occupied
			return nil
		}
		if part.hash[i] == h {
			span := packed[part.head[i]:part.tail[i]]
			if t.rows[span[0]].KeyEqualCols(t.idx, probe, probeIdx) {
				return span
			}
		}
		i = (i + 1) & part.mask
	}
}

// contains reports whether any row of the table has the probe row's key.
func (t *rowTable) contains(h uint64, probe relation.Row, probeIdx []int) bool {
	return len(t.lookup(h, probe, probeIdx)) > 0
}
