package svc

import (
	"fmt"
	"sort"

	"github.com/sampleclean/svc/internal/algebra"
	"github.com/sampleclean/svc/internal/relation"
)

// Multi-view group maintenance: one catalog-wide cycle instead of V
// independent ones.
//
// Independent MaintainNow calls over views sharing a database each pin,
// evaluate, and publish separately — every cycle re-scans the same staged
// deltas, and the first publication folds the deltas the later views were
// about to read (correct, but each view pays a full cycle). MaintainViews
// instead maintains K views against ONE pinned version with ONE shared
// subplan cache and publishes all K results in a single version swap:
// every shared delta subtree is evaluated once, and all views land on the
// same maintenance boundary.

// GroupStats reports the cost of one group maintenance cycle.
type GroupStats struct {
	// Views is the number of views maintained in the cycle.
	Views int
	// RowsTouched sums the per-view maintenance evaluation costs (rows
	// scanned plus rows materialized), after shared-subplan savings.
	RowsTouched int64
	// SharedHits / SharedMisses count shared-subplan cache lookups across
	// the cycle; RowsSaved totals the evaluation rows the hits avoided.
	SharedHits, SharedMisses uint64
	RowsSaved                int64
	// Subplans is the number of distinct shared subtrees materialized.
	Subplans int
}

// MaintainViews runs one maintenance cycle over all the given views, which
// must share a database. The cycle pins one catalog version, maintains
// every view against it with a shared subplan cache (delta subtrees common
// to several views are evaluated once), and publishes every maintained
// view, its rolled-forward sample, and the delta fold in one version swap.
// On error nothing is published.
//
// MaintainViews serializes with each view's MaintainNow; concurrent group
// cycles over overlapping view sets serialize too (locks are taken in
// view-name order, so they cannot deadlock).
func MaintainViews(views ...*StaleView) (GroupStats, error) {
	if len(views) == 0 {
		return GroupStats{}, nil
	}
	d := views[0].db
	for _, sv := range views[1:] {
		if sv.db != d {
			return GroupStats{}, fmt.Errorf("svc: MaintainViews across databases")
		}
	}
	ordered := append([]*StaleView(nil), views...)
	sort.Slice(ordered, func(i, j int) bool {
		return ordered[i].view.Name() < ordered[j].view.Name()
	})
	for i, sv := range ordered {
		if i > 0 && sv == ordered[i-1] {
			return GroupStats{}, fmt.Errorf("svc: MaintainViews: view %q listed twice", sv.view.Name())
		}
	}
	for _, sv := range ordered {
		sv.maintMu.Lock()
	}
	defer func() {
		for _, sv := range ordered {
			sv.maintMu.Unlock()
		}
	}()

	// Bring every view's serving attachment up to date (republishing is a
	// no-op on the normal path), then pin once: the final version carries
	// all K attachments, so the whole cycle reads one consistent cut.
	for _, sv := range ordered {
		sv.pinServingLocked()
	}
	pin := d.Pin()
	cache := algebra.NewSubplanCache(pin.Epoch())
	defer cache.Release()

	var stats GroupStats
	atts := make(map[string]any, len(ordered))
	type published struct {
		sv                 *StaleView
		maintained, sample *relation.Relation
	}
	outs := make([]published, 0, len(ordered))
	for _, sv := range ordered {
		st, ok := pin.Attachment(sv.key).(*servingState)
		if !ok {
			return GroupStats{}, fmt.Errorf("svc: view %q has no serving state on the pinned version", sv.view.Name())
		}
		samples, err := sv.cleanPinned(pin, st)
		if err != nil {
			return GroupStats{}, err
		}
		newSample, err := sv.cleaner.CoerceSample(samples)
		if err != nil {
			return GroupStats{}, err
		}
		maintained, mstats, err := sv.maint.MaintainAtShared(pin, st.view, cache)
		if err != nil {
			return GroupStats{}, err
		}
		stats.RowsTouched += mstats.RowsTouched
		atts[sv.key] = &servingState{view: maintained, sample: newSample}
		outs = append(outs, published{sv: sv, maintained: maintained, sample: newSample})
	}
	stats.Views = len(ordered)
	stats.SharedHits, stats.SharedMisses, stats.RowsSaved = cache.Stats()
	stats.Subplans = cache.Entries()

	// Fold only the tables the group actually reads: a partial boundary
	// keeps every other table's deltas pending, so views outside the
	// group (e.g. ones a Scheduler deferred this tick) are never silently
	// starved of their change sets. When the group covers every table
	// with pending deltas the fold is full anyway — run it as a full
	// boundary so the durable log's replay cut advances too.
	foldSet := make(map[string]bool)
	var foldTables []string
	for _, sv := range ordered {
		for _, t := range sv.view.BaseTables() {
			if !foldSet[t] {
				foldSet[t] = true
				foldTables = append(foldTables, t)
			}
		}
	}
	full := true
	for _, t := range pin.Tables() {
		if !foldSet[t] && pin.PendingRows(t) > 0 {
			full = false
			break
		}
	}
	var applyErr error
	if full {
		applyErr = d.ApplyVersion(pin, atts)
	} else {
		applyErr = d.ApplyVersionTables(pin, atts, foldTables)
	}
	if applyErr != nil {
		return GroupStats{}, applyErr
	}
	applied := d.Pin().AppliedSeq()
	for _, o := range outs {
		if err := o.sv.view.Replace(o.maintained); err != nil {
			return GroupStats{}, err
		}
		o.sv.cleaner.AdoptRelation(o.sample)
		o.sv.appliedSeq.Store(applied)
	}
	return stats, nil
}
