package algebra

import (
	"fmt"

	"github.com/sampleclean/svc/internal/relation"
)

// Context supplies named base relations to Eval and accumulates a
// row-centric cost measure.
//
// The maintenance-cost experiments report both wall-clock time and
// RowsTouched; the latter is a machine-independent proxy for the work a
// maintenance strategy performs (rows scanned plus rows materialized by
// every operator).
type Context struct {
	rels map[string]*relation.Relation

	// RowsTouched counts rows read and emitted by all operators during
	// evaluations against this context.
	RowsTouched int64

	// Parallelism is the intra-operator worker-count hint. Operators with
	// partitionable work (hash-join build/probe, aggregation, hash
	// sampling) fork up to this many goroutines per operator when the
	// input is large enough to amortize the fork (see parallel.go); the
	// result is byte-identical to serial evaluation. 0 and 1 mean serial.
	Parallelism int

	// NoColumnar disables the columnar batch path: fused scans, selects,
	// projections, hash filters, and serial aggregation fall back to the
	// row-at-a-time pipeline. The zero value (columnar on) is the
	// production default; the flag exists for A/B benchmarking
	// (svcbench -columnar=off) and the columnar≡row property tests.
	// Results are identical either way.
	NoColumnar bool

	// Epoch identifies the catalog version whose bindings this context
	// reads (db.Version.Context stamps it). 0 means unversioned; a
	// SubplanCache only ever serves contexts whose Epoch matches its own,
	// so cached subtree outputs cannot cross catalog versions.
	Epoch uint64

	// Subplans is the per-cycle shared-subplan cache consulted by
	// CachedNode (nil disables sharing; see cached.go). Set by the group
	// maintenance cycle, never by single-view evaluation.
	Subplans *SubplanCache
}

// NewContext creates an evaluation context over the given named relations.
func NewContext(rels map[string]*relation.Relation) *Context {
	if rels == nil {
		rels = make(map[string]*relation.Relation)
	}
	return &Context{rels: rels}
}

// workerCtx derives the shadow context a parallel worker evaluates under:
// a copy of the parent with Parallelism pinned to 1 (workers never fork
// again) and a fresh RowsTouched counter (merged back by the caller).
// Copying the parent is deliberate — every other knob, present or future,
// must mean the same thing in a worker as in the serial drain, so a new
// Context field is threaded through automatically (the reflection
// regression test in context_test.go enforces this).
func (c *Context) workerCtx() *Context {
	w := *c
	w.Parallelism = 1
	w.RowsTouched = 0
	return &w
}

// Bind makes rel available under name, replacing any previous binding.
func (c *Context) Bind(name string, rel *relation.Relation) { c.rels[name] = rel }

// Relation returns the named relation.
func (c *Context) Relation(name string) (*relation.Relation, error) {
	r, ok := c.rels[name]
	if !ok {
		return nil, fmt.Errorf("algebra: relation %q not bound in context", name)
	}
	return r, nil
}

// Node is one operator of a relational expression tree.
type Node interface {
	// Schema returns the output schema, including the primary key derived
	// by the Definition 2 rules. Derived relations may be keyless (e.g. a
	// full-relation aggregate), in which case HasKey() is false.
	Schema() relation.Schema
	// Eval materializes the node's output against the context.
	Eval(ctx *Context) (*relation.Relation, error)
	// Children returns the input nodes in order.
	Children() []Node
	// WithChildren returns a copy of this node with the children replaced
	// (len(ch) must equal len(Children())). Used by plan rewriters.
	WithChildren(ch []Node) Node
	// String renders a one-line description of this operator (not the
	// subtree).
	String() string
}

// Format renders the expression tree with indentation for debugging.
func Format(n Node) string {
	return format(n, "")
}

func format(n Node, indent string) string {
	s := indent + n.String()
	for _, c := range n.Children() {
		s += "\n" + format(c, indent+"  ")
	}
	return s
}

// output builds a fresh relation with the node's schema and inserts rows,
// upserting when the schema is keyed so set semantics hold.
func output(ctx *Context, schema relation.Schema, rows []relation.Row) (*relation.Relation, error) {
	out := relation.NewSized(schema, len(rows))
	for _, r := range rows {
		if schema.HasKey() {
			if _, err := out.Upsert(r); err != nil {
				return nil, err
			}
		} else if err := out.Insert(r); err != nil {
			return nil, err
		}
	}
	ctx.RowsTouched += int64(len(rows))
	return out, nil
}

// Walk visits n and all descendants in pre-order.
func Walk(n Node, visit func(Node)) {
	visit(n)
	for _, c := range n.Children() {
		Walk(c, visit)
	}
}

// CountNodes returns the number of operators in the tree.
func CountNodes(n Node) int {
	total := 0
	Walk(n, func(Node) { total++ })
	return total
}
