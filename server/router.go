package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	svc "github.com/sampleclean/svc"
	"github.com/sampleclean/svc/client"
	"github.com/sampleclean/svc/internal/shard"
	"github.com/sampleclean/svc/internal/svcql"
	"github.com/sampleclean/svc/server/api"
)

// RouterConfig tunes a Router. Shards lists the fleet's base URLs in
// shard-id order; its length must equal Placement.Count.
type RouterConfig struct {
	// Addr is the router's listen address for Start (default
	// "127.0.0.1:7780").
	Addr      string
	Shards    []string
	Placement shard.Placement
	// Confidence is the CI level merged estimates are finalized at
	// (default 0.95) — shards ship sufficient statistics, not intervals,
	// so the router owns the confidence level.
	Confidence float64
	// ShardDeadline bounds each shard call (default 5s). Hedge is the
	// delay before a straggling shard call is raced with a second attempt
	// (default ShardDeadline/8; hedging retries reads only — ingest is
	// never hedged, since re-staging is not idempotent).
	ShardDeadline time.Duration
	Hedge         time.Duration
	// Degrade answers scatter queries from the surviving shards when some
	// are down: values extrapolate by fleet/healthy with correspondingly
	// wider intervals, and the answer is marked Degraded. Off (the
	// default), any shard failure is a 502 naming the shard.
	Degrade bool
	// MaxRows caps concatenated base-table SELECT results when the
	// request does not set a smaller cap (default 1000).
	MaxRows int
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:7780"
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		c.Confidence = 0.95
	}
	if c.ShardDeadline <= 0 {
		c.ShardDeadline = 5 * time.Second
	}
	if c.Hedge <= 0 {
		c.Hedge = c.ShardDeadline / 8
	}
	if c.MaxRows <= 0 {
		c.MaxRows = 1000
	}
	return c
}

// Router is the stateless scatter-gather front door of a sharded svcd
// fleet. It holds no data and no durable state — only the placement
// contract and the shard addresses — so any number of interchangeable
// routers can front the same fleet.
//
// Query routing: an aggregate whose WHERE pins every placement column of
// the view by equality goes to the single owning shard (the common
// single-key case pays one shard's work, which is how a fleet scales on
// per-key workloads); anything else scatters, collecting per-shard
// sufficient statistics that merge by the CLT composition algebra
// (svc.MergePartials) into one global interval. Base-table SELECTs
// concatenate per-shard rows with per-shard epoch stamps. Ingest batches
// split by placement hash and fan out with per-shard durable acks.
type Router struct {
	cfg    RouterConfig
	shards []*routerShard
	rr     atomic.Uint64 // round-robin cursor for replicated-table reads

	httpSrv *http.Server
	ln      net.Listener
}

// routerShard is one fleet member as the router sees it.
type routerShard struct {
	id   int
	addr string
	c    *client.Client
}

// NewRouter validates the placement contract against the shard list.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("server: router needs at least one shard")
	}
	if cfg.Placement.Count != len(cfg.Shards) {
		return nil, fmt.Errorf("server: placement count %d != %d shard addresses",
			cfg.Placement.Count, len(cfg.Shards))
	}
	r := &Router{cfg: cfg}
	for i, addr := range cfg.Shards {
		r.shards = append(r.shards, &routerShard{
			id:   i,
			addr: addr,
			c: client.New(addr,
				// The transport timeout backstops the per-request deadline
				// the shard enforces server-side (504 before this fires).
				client.WithHTTPClient(&http.Client{Timeout: cfg.ShardDeadline + time.Second}),
				// 503 sheds are safe to retry: the shard rejected before
				// doing any work. Short and capped — the hedge and the
				// shard deadline bound total latency.
				client.WithRetryPolicy(3, 25*time.Millisecond, 250*time.Millisecond)),
		})
	}
	return r, nil
}

// Handler returns the router's HTTP front door, wire-compatible with a
// single svcd for /query and /ingest; /stats serves the fleet-wide
// aggregate (api.ClusterStatsResponse).
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", r.handleQuery)
	mux.HandleFunc("/ingest", r.handleIngest)
	mux.HandleFunc("/stats", r.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Start binds the configured address and serves in the background.
func (r *Router) Start() error {
	ln, err := net.Listen("tcp", r.cfg.Addr)
	if err != nil {
		return err
	}
	r.ln = ln
	r.httpSrv = &http.Server{Handler: r.Handler()}
	go func() { _ = r.httpSrv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address after Start.
func (r *Router) Addr() string {
	if r.ln == nil {
		return ""
	}
	return r.ln.Addr().String()
}

// Shutdown stops the router. It owns no views or data, so there is
// nothing to drain beyond the HTTP server itself.
func (r *Router) Shutdown(ctx context.Context) error {
	if r.httpSrv == nil {
		return nil
	}
	return r.httpSrv.Shutdown(ctx)
}

// shardError wraps a failed shard call with the shard's identity — the
// error classification contract: clients of a fleet always learn which
// member failed.
type shardError struct {
	shard int
	addr  string
	err   error
}

func (e *shardError) Error() string {
	return fmt.Sprintf("shard %d (%s): %v", e.shard, e.addr, e.err)
}

func (e *shardError) Unwrap() error { return e.err }

// shardStatus maps a failed shard call to the router's response code:
// a shard's own 4xx (bad SQL, bad row) passes through as the client's
// fault; everything else — transport errors, shard 5xx — is a 502, the
// "a fleet member is down/broken" signal, distinct from the router's
// own 4xx validation errors.
func shardStatus(err error) int {
	var ae *client.APIError
	if errors.As(err, &ae) && ae.StatusCode >= 400 && ae.StatusCode < 500 {
		return ae.StatusCode
	}
	return http.StatusBadGateway
}

// hedged races a straggling call with one retry: the second attempt
// launches when the first is slow (the hedge delay) or failed; the first
// success wins. Reads only — the caller must not hedge non-idempotent
// operations.
func hedged[T any](delay time.Duration, call func() (T, error)) (T, error) {
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, 2)
	run := func() {
		v, err := call()
		ch <- outcome{v, err}
	}
	go run()
	launched, inflight := 1, 1
	timer := time.NewTimer(delay)
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case o := <-ch:
			inflight--
			if o.err == nil {
				return o.v, nil
			}
			if firstErr == nil {
				firstErr = o.err
			}
			if launched < 2 {
				launched++
				inflight++
				go run()
				continue
			}
			if inflight == 0 {
				var zero T
				return zero, firstErr
			}
		case <-timer.C:
			if launched < 2 {
				launched++
				inflight++
				go run()
			}
		}
	}
}

// scatter runs one call against every shard concurrently (hedged) and
// returns the per-shard results with any per-shard errors wrapped in
// shardError.
func scatter[T any](r *Router, call func(s *routerShard) (T, error)) ([]T, []error) {
	results := make([]T, len(r.shards))
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i, s := range r.shards {
		wg.Add(1)
		go func(i int, s *routerShard) {
			defer wg.Done()
			v, err := hedged(r.cfg.Hedge, func() (T, error) { return call(s) })
			if err != nil {
				errs[i] = &shardError{shard: s.id, addr: s.addr, err: err}
				return
			}
			results[i] = v
		}(i, s)
	}
	wg.Wait()
	return results, errs
}

// firstError returns the first non-nil error and how many shards
// succeeded.
func firstError(errs []error) (error, int) {
	healthy := 0
	var first error
	for _, e := range errs {
		if e == nil {
			healthy++
		} else if first == nil {
			first = e
		}
	}
	return first, healthy
}

// ------------------------------------------------------------ /query

func (r *Router) handleQuery(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a JSON body to /query")
		return
	}
	var qr api.QueryRequest
	if err := json.NewDecoder(req.Body).Decode(&qr); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	cv, sel, err := svcql.Parse(qr.SQL)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if cv != nil {
		writeError(w, http.StatusBadRequest, "CREATE VIEW is per-shard (svcd startup), not routable")
		return
	}
	qr.Partial = false // routers merge; clients of the router get finished answers
	if key, ok := r.cfg.Placement.Views[sel.From]; ok {
		r.routeViewQuery(w, &qr, sel, key)
		return
	}
	r.routeTableSelect(w, &qr, sel)
}

// routeViewQuery answers an aggregate against a partitioned view: pruned
// to the owning shard when the placement key is pinned, otherwise
// scattered and merged.
func (r *Router) routeViewQuery(w http.ResponseWriter, qr *api.QueryRequest, sel *svcql.SelectStmt, key shard.Key) {
	if len(sel.GroupBy) == 0 {
		if id, ok := r.pruneToShard(sel, key); ok {
			r.forwardPinned(w, qr, id)
			return
		}
	}
	agg := ""
	for _, it := range sel.Items {
		if it.Agg != "" {
			agg = strings.ToUpper(it.Agg)
			break
		}
	}
	switch agg {
	case "COUNT", "SUM", "AVG":
	default:
		writeError(w, http.StatusNotImplemented,
			"%s does not merge across shards; pin the placement key (%s) with an equality predicate to route to one shard",
			agg, strings.Join(key.Cols, ","))
		return
	}
	if len(sel.GroupBy) > 0 {
		r.scatterGroups(w, qr)
		return
	}
	r.scatterEstimate(w, qr)
}

// pruneToShard inspects the WHERE clause for equality literals pinning
// every placement column; when they do, the query's rows live on exactly
// one shard and the whole query routes there.
func (r *Router) pruneToShard(sel *svcql.SelectStmt, key shard.Key) (int, bool) {
	bind := equalityBindings(sel.Where)
	vals := make([]any, len(key.Cols))
	for i, col := range key.Cols {
		v, ok := bind[col]
		if !ok {
			return 0, false
		}
		vals[i] = v
	}
	h, err := shard.HashJSON(vals)
	if err != nil {
		return 0, false
	}
	return r.cfg.Placement.ShardOf(h), true
}

// equalityBindings walks the top-level AND conjuncts collecting
// column = literal bindings. Anything under an OR (or any non-AND
// connective) is skipped — those do not pin a value.
func equalityBindings(e *svcql.ExprNode) map[string]any {
	out := map[string]any{}
	var walk func(n *svcql.ExprNode)
	walk = func(n *svcql.ExprNode) {
		if n == nil || n.Kind != "binary" {
			return
		}
		if n.Op == "AND" {
			walk(n.L)
			walk(n.R)
			return
		}
		if n.Op != "=" {
			return
		}
		if n.L.Kind == "ident" {
			if v, ok := literalValue(n.R); ok {
				out[n.L.Text] = v
			}
		} else if n.R.Kind == "ident" {
			if v, ok := literalValue(n.L); ok {
				out[n.R.Text] = v
			}
		}
	}
	walk(e)
	return out
}

func literalValue(n *svcql.ExprNode) (any, bool) {
	if n == nil {
		return nil, false
	}
	switch n.Kind {
	case "number":
		f, err := strconv.ParseFloat(n.Text, 64)
		if err != nil {
			return nil, false
		}
		return f, true
	case "string":
		return n.Text, true
	case "null":
		return nil, true
	}
	return nil, false
}

// forwardPinned sends the whole query to the single owning shard and
// relays its finished answer, stamped with the shard's identity.
func (r *Router) forwardPinned(w http.ResponseWriter, qr *api.QueryRequest, id int) {
	s := r.shards[id]
	resp, err := hedged(r.cfg.Hedge, func() (*api.QueryResponse, error) {
		return s.c.QueryRequest(qr)
	})
	if err != nil {
		se := &shardError{shard: s.id, addr: s.addr, err: err}
		writeError(w, shardStatus(err), "%v", se)
		return
	}
	resp.Shards = []api.ShardStamp{{Shard: s.id, AsOfEpoch: resp.AsOfEpoch, AppliedSeq: resp.AppliedSeq}}
	writeJSON(w, http.StatusOK, resp)
}

// scatterEstimate fans a mergeable aggregate out as partial-statistics
// requests and finalizes the composed statistics into one answer.
func (r *Router) scatterEstimate(w http.ResponseWriter, qr *api.QueryRequest) {
	preq := *qr
	preq.Partial = true
	resps, errs := scatter(r, func(s *routerShard) (*api.QueryResponse, error) {
		return s.c.QueryRequest(&preq)
	})
	resps, stamps, degraded, ok := r.gatherOrFail(w, resps, errs)
	if !ok {
		return
	}
	parts := make([]svc.Partial, 0, len(resps))
	for _, sr := range resps {
		if sr.Partial == nil {
			writeError(w, http.StatusBadGateway, "shard returned %q, want partial statistics", sr.Kind)
			return
		}
		p, err := partialFromWire(*sr.Partial)
		if err != nil {
			writeError(w, http.StatusBadGateway, "%v", err)
			return
		}
		parts = append(parts, p)
	}
	merged, err := svc.MergePartials(parts...)
	if err != nil {
		writeError(w, http.StatusBadGateway, "merge: %v", err)
		return
	}
	if degraded {
		merged = extrapolatePartial(merged, len(r.shards), len(resps))
	}
	est, err := merged.Finalize(r.cfg.Confidence)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "finalize: %v", err)
		return
	}
	out := &api.QueryResponse{
		Kind:     "estimate",
		View:     resps[0].View,
		Shards:   stamps,
		Degraded: degraded,
	}
	e := wireEstimate(est)
	out.Estimate = &e
	if merged.Method == "svc+corr" {
		// The per-shard stale baselines sum to the global stale answer
		// (avg: the ratio of summed stale sum and count).
		stale := merged.Stale
		if merged.Agg == svc.AvgAgg {
			if merged.CntStale == 0 {
				stale = 0
			} else {
				stale = merged.Stale / merged.CntStale
			}
		}
		out.StaleValue = &stale
	}
	r.stampMerged(out, resps)
	writeJSON(w, http.StatusOK, out)
}

// scatterGroups is scatterEstimate for GROUP BY: per-shard group
// partials merge by encoded group key, groups union.
func (r *Router) scatterGroups(w http.ResponseWriter, qr *api.QueryRequest) {
	preq := *qr
	preq.Partial = true
	resps, errs := scatter(r, func(s *routerShard) (*api.QueryResponse, error) {
		return s.c.QueryRequest(&preq)
	})
	resps, stamps, degraded, ok := r.gatherOrFail(w, resps, errs)
	if !ok {
		return
	}
	sets := make([]svc.GroupPartials, 0, len(resps))
	for _, sr := range resps {
		set := svc.GroupPartials{Groups: map[string]svc.Partial{}, Labels: map[string]string{}}
		for _, gp := range sr.GroupPartials {
			p, err := partialFromWire(gp.PartialEstimate)
			if err != nil {
				writeError(w, http.StatusBadGateway, "group %q: %v", gp.Label, err)
				return
			}
			set.Groups[gp.Key] = p
			set.Labels[gp.Key] = gp.Label
		}
		sets = append(sets, set)
	}
	merged, err := svc.MergeGroupPartials(sets...)
	if err != nil {
		writeError(w, http.StatusBadGateway, "merge: %v", err)
		return
	}
	if degraded {
		for k, p := range merged.Groups {
			merged.Groups[k] = extrapolatePartial(p, len(r.shards), len(resps))
		}
	}
	res, err := merged.Finalize(r.cfg.Confidence)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "finalize: %v", err)
		return
	}
	out := &api.QueryResponse{
		Kind:     "groups",
		View:     resps[0].View,
		Shards:   stamps,
		Degraded: degraded,
	}
	for key, est := range res.Groups {
		out.Groups = append(out.Groups, api.Group{Key: res.Labels[key], Estimate: wireEstimate(est)})
	}
	sort.Slice(out.Groups, func(i, j int) bool { return out.Groups[i].Key < out.Groups[j].Key })
	r.stampMerged(out, resps)
	writeJSON(w, http.StatusOK, out)
}

// routeTableSelect answers a base-table SELECT: partitioned tables
// scatter and concatenate (each shard holds a disjoint slice);
// replicated tables read one shard, failing over across the fleet.
func (r *Router) routeTableSelect(w http.ResponseWriter, qr *api.QueryRequest, sel *svcql.SelectStmt) {
	if _, partitioned := r.cfg.Placement.Tables[sel.From]; !partitioned {
		// Replicated (or unknown — the shard's own 404 passes through).
		start := int(r.rr.Add(1))
		var lastErr error
		for i := 0; i < len(r.shards); i++ {
			s := r.shards[(start+i)%len(r.shards)]
			resp, err := hedged(r.cfg.Hedge, func() (*api.QueryResponse, error) {
				return s.c.QueryRequest(qr)
			})
			if err == nil {
				resp.Shards = []api.ShardStamp{{Shard: s.id, AsOfEpoch: resp.AsOfEpoch, AppliedSeq: resp.AppliedSeq, Rows: len(resp.Rows)}}
				writeJSON(w, http.StatusOK, resp)
				return
			}
			lastErr = &shardError{shard: s.id, addr: s.addr, err: err}
			// A shard answering with a 4xx would answer the same everywhere
			// (replicas are identical) — pass it through instead of
			// retrying the whole fleet.
			if shardStatus(err) != http.StatusBadGateway {
				break
			}
		}
		writeError(w, shardStatus(lastErr), "%v", lastErr)
		return
	}

	maxRows := r.cfg.MaxRows
	if qr.MaxRows > 0 && qr.MaxRows < maxRows {
		maxRows = qr.MaxRows
	}
	resps, errs := scatter(r, func(s *routerShard) (*api.QueryResponse, error) {
		return s.c.QueryRequest(qr)
	})
	resps, stamps, degraded, ok := r.gatherOrFail(w, resps, errs)
	if !ok {
		return
	}
	out := &api.QueryResponse{
		Kind:     "rows",
		Columns:  resps[0].Columns,
		Shards:   stamps,
		Degraded: degraded,
	}
	for i, sr := range resps {
		out.RowCount += sr.RowCount
		out.Truncated = out.Truncated || sr.Truncated
		out.Rows = append(out.Rows, sr.Rows...)
		out.Shards[i].Rows = len(sr.Rows)
	}
	if len(out.Rows) > maxRows {
		out.Rows = out.Rows[:maxRows]
		out.Truncated = true
	}
	r.stampMerged(out, resps)
	writeJSON(w, http.StatusOK, out)
}

// gatherOrFail applies the fleet failure policy to scatter results: all
// healthy → proceed; some down → 502 naming the first failed shard, or
// (Degrade) proceed on the survivors with degraded=true. The returned
// slice holds only healthy responses; stamps carry their identities.
func (r *Router) gatherOrFail(w http.ResponseWriter, resps []*api.QueryResponse, errs []error) ([]*api.QueryResponse, []api.ShardStamp, bool, bool) {
	first, healthy := firstError(errs)
	if first != nil && (!r.cfg.Degrade || healthy == 0) {
		writeError(w, shardStatus(first), "%v", first)
		return nil, nil, false, false
	}
	var ok []*api.QueryResponse
	var stamps []api.ShardStamp
	for i, sr := range resps {
		if errs[i] != nil {
			continue
		}
		ok = append(ok, sr)
		stamps = append(stamps, api.ShardStamp{Shard: i, AsOfEpoch: sr.AsOfEpoch, AppliedSeq: sr.AppliedSeq})
	}
	return ok, stamps, first != nil, true
}

// extrapolatePartial scales surviving-shard statistics up to the fleet:
// with hash placement the shards are statistically exchangeable, so the
// missing shards' contribution is estimated by the survivors' mean. The
// point statistics scale by fleet/healthy and the variance terms by its
// square, widening the interval by the same factor — a flag-gated
// degraded answer, marked as such, never silently served.
func extrapolatePartial(p svc.Partial, fleet, healthy int) svc.Partial {
	if healthy <= 0 || healthy >= fleet {
		return p
	}
	f := float64(fleet) / float64(healthy)
	p.Stale *= f
	p.Sum *= f
	p.SumSq *= f * f
	p.CntStale *= f
	p.CntSum *= f
	p.CntSumSq *= f * f
	return p
}

// stampMerged sets the answer-level staleness fields from the healthy
// shard responses: the merged answer is only as fresh as its laggiest
// contributor, so the minima are advertised.
func (r *Router) stampMerged(out *api.QueryResponse, resps []*api.QueryResponse) {
	for i, sr := range resps {
		if i == 0 || sr.AsOfEpoch < out.AsOfEpoch {
			out.AsOfEpoch = sr.AsOfEpoch
		}
		if i == 0 || sr.AppliedSeq < out.AppliedSeq {
			out.AppliedSeq = sr.AppliedSeq
		}
		out.Pending = out.Pending || sr.Pending
	}
}

// ------------------------------------------------------------ /ingest

func (r *Router) handleIngest(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a JSON body to /ingest")
		return
	}
	var ir api.IngestRequest
	if err := json.NewDecoder(req.Body).Decode(&ir); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(ir.Ops) == 0 {
		writeError(w, http.StatusBadRequest, "empty ops")
		return
	}
	key, partitioned := r.cfg.Placement.Tables[ir.Table]
	if !partitioned {
		// Replicated table: every shard holds a copy, so the whole batch
		// broadcasts and all shards must ack.
		r.ingestFanout(w, &ir, broadcastBatches(&ir, len(r.shards)))
		return
	}
	batches := make([][]api.IngestOp, len(r.shards))
	for i, op := range ir.Ops {
		id, err := r.opShard(key, op)
		if err != nil {
			writeError(w, http.StatusBadRequest, "op %d: %v", i, err)
			return
		}
		batches[id] = append(batches[id], op)
	}
	r.ingestFanout(w, &ir, batches)
}

func broadcastBatches(ir *api.IngestRequest, n int) [][]api.IngestOp {
	batches := make([][]api.IngestOp, n)
	for i := range batches {
		batches[i] = ir.Ops
	}
	return batches
}

// opShard derives one op's owning shard from the placement contract.
// Inserts and updates carry the full row; deletes carry only the primary
// key and are routable only when the placement columns are part of it
// (Key.KeyIdx) — otherwise the owner cannot be derived and the op is
// rejected (broadcasting a delete would fail on every non-owner, whose
// staging layer rejects deletes of absent keys).
func (r *Router) opShard(key shard.Key, op api.IngestOp) (int, error) {
	switch op.Op {
	case "insert", "update":
		vals := make([]any, len(key.RowIdx))
		for i, idx := range key.RowIdx {
			if idx >= len(op.Row) {
				return 0, fmt.Errorf("row has %d values, placement needs column %d", len(op.Row), idx)
			}
			vals[i] = op.Row[idx]
		}
		h, err := shard.HashJSON(vals)
		if err != nil {
			return 0, err
		}
		return r.cfg.Placement.ShardOf(h), nil
	case "delete":
		if key.KeyIdx == nil {
			return 0, fmt.Errorf("deletes against this table are not routable: placement columns (%s) are not part of the primary key",
				strings.Join(key.Cols, ","))
		}
		vals := make([]any, len(key.KeyIdx))
		for i, idx := range key.KeyIdx {
			if idx >= len(op.Key) {
				return 0, fmt.Errorf("key has %d values, placement needs key column %d", len(op.Key), idx)
			}
			vals[i] = op.Key[idx]
		}
		h, err := shard.HashJSON(vals)
		if err != nil {
			return 0, err
		}
		return r.cfg.Placement.ShardOf(h), nil
	default:
		return 0, fmt.Errorf("unknown op %q (want insert, update, or delete)", op.Op)
	}
}

// ingestFanout sends each shard its batch concurrently (no hedging —
// staging is not idempotent) and merges the acks. Any shard failure
// fails the request; ops already staged on other shards stay staged
// (ingest is at-least-once under router retries, and staging upserts
// absorb replays).
func (r *Router) ingestFanout(w http.ResponseWriter, ir *api.IngestRequest, batches [][]api.IngestOp) {
	acks := make([]*api.IngestResponse, len(r.shards))
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i, s := range r.shards {
		if len(batches[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, s *routerShard) {
			defer wg.Done()
			resp, err := s.c.Ingest(ir.Table, batches[i])
			if err != nil {
				errs[i] = &shardError{shard: s.id, addr: s.addr, err: err}
				return
			}
			acks[i] = resp
		}(i, s)
	}
	wg.Wait()
	if first, _ := firstError(errs); first != nil {
		writeError(w, shardStatus(first), "%v", first)
		return
	}
	out := &api.IngestResponse{Durable: true}
	touched := 0
	for i, ack := range acks {
		if ack == nil {
			continue
		}
		touched++
		out.Staged += ack.Staged
		out.Durable = out.Durable && ack.Durable
		out.Shards = append(out.Shards, api.IngestShardAck{
			Shard: i, Staged: ack.Staged, Durable: ack.Durable, DurableSeq: ack.DurableSeq,
		})
	}
	if touched == 0 {
		writeError(w, http.StatusBadRequest, "no ops to stage")
		return
	}
	out.Durable = out.Durable && touched > 0
	writeJSON(w, http.StatusOK, out)
}

// ------------------------------------------------------------- /stats

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	stats, errs := scatter(r, func(s *routerShard) (*api.StatsResponse, error) {
		return s.c.Stats()
	})
	out := &api.ClusterStatsResponse{Shards: len(r.shards)}
	var gets, news [2]uint64
	for i, st := range stats {
		row := api.ShardStats{Shard: i, Addr: r.shards[i].addr}
		if errs[i] != nil {
			row.Error = errs[i].Error()
			out.PerShard = append(out.PerShard, row)
			continue
		}
		first := out.Healthy == 0
		out.Healthy++
		row.Epoch = st.Epoch
		row.AppliedSeq = st.AppliedSeq
		row.EpochLag = st.EpochLag
		row.InFlight = st.InFlight
		row.Served = st.Served
		if st.WAL != nil {
			row.WALUnappliedRecords = st.WAL.UnappliedRecords
			row.WALUnappliedBytes = st.WAL.UnappliedBytes
			row.WALDiskBytes = st.WAL.DiskBytes
		}
		out.PerShard = append(out.PerShard, row)

		if first || st.Epoch < out.MinEpoch {
			out.MinEpoch = st.Epoch
		}
		if st.Epoch > out.MaxEpoch {
			out.MaxEpoch = st.Epoch
		}
		if first || st.AppliedSeq < out.MinAppliedSeq {
			out.MinAppliedSeq = st.AppliedSeq
		}
		if st.AppliedSeq > out.MaxAppliedSeq {
			out.MaxAppliedSeq = st.AppliedSeq
		}
		if first || st.EpochLag < out.MinEpochLag {
			out.MinEpochLag = st.EpochLag
		}
		if st.EpochLag > out.MaxEpochLag {
			out.MaxEpochLag = st.EpochLag
		}
		out.Served += st.Served
		out.Rejected += st.Rejected
		out.TimedOut += st.TimedOut
		out.Errors += st.Errors
		out.Ingested += st.Ingested
		out.IngestShed += st.IngestShed
		gets[0] += st.Pools.BatchGets
		news[0] += st.Pools.BatchNews
		gets[1] += st.Pools.VecGets
		news[1] += st.Pools.VecNews
	}
	out.Pools = api.PoolStats{
		BatchGets: gets[0], BatchNews: news[0], BatchHitRate: hitRate(gets[0], news[0]),
		VecGets: gets[1], VecNews: news[1], VecHitRate: hitRate(gets[1], news[1]),
	}
	writeJSON(w, http.StatusOK, out)
}

func hitRate(gets, news uint64) float64 {
	if gets == 0 {
		return 1.0
	}
	return 1 - float64(news)/float64(gets)
}
