// Package svcql implements the small SQL dialect the paper writes its
// examples in (Sections 2–3), end to end: CREATE VIEW over
// select-project-join-aggregate blocks, aggregate SELECTs against a view
// for the estimators, and bare SELECTs over base tables executed through
// the batched pipeline.
//
// Grammar (case-insensitive keywords):
//
//	create_view := CREATE VIEW ident AS select
//	select      := SELECT item {"," item} FROM ident {join}
//	               [WHERE expr] [GROUP BY ident {"," ident}]
//	join        := JOIN ident ON ident "=" ident
//	item        := expr [AS ident]
//	             | (COUNT "(" ("*"|"1") ")" | agg "(" expr ")") [AS ident]
//	agg         := SUM | AVG | MIN | MAX | MEDIAN
//	expr        := disjunction of comparisons over +,-,*,/ terms;
//	               literals, identifiers, parentheses, NOT, BETWEEN,
//	               IS [NOT] NULL
//
// Joins are equi-joins on unqualified column names; when both sides share
// the join column's name the columns are merged (SQL USING semantics),
// which is what gives foreign-key joins their natural key (Definition 2).
//
// The package splits planner from executor. PlanView compiles CREATE VIEW
// into a view.Definition (materialized by package view); PlanQuery
// compiles an aggregate SELECT against a view into an estimator query
// (answered by package estimator with confidence intervals); PlanSelect /
// ExecAt compile and run a bare SELECT over base tables through the
// batched pipeline — the path the svcd daemon serves.
//
// Concurrency contract: parsing and planning are stateless and safe for
// unrestricted concurrent use. ExecAt evaluates against an immutable
// pinned db.Version (a fresh evaluation context per call), so any number
// of goroutines may execute concurrently while writers stage updates and
// maintenance publishes new versions.
package svcql
