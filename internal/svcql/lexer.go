package svcql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol  // punctuation and operators
	tokKeyword // recognized SQL keyword (normalized upper-case)
)

// keywords recognized by the lexer.
var keywords = map[string]bool{
	"CREATE": true, "VIEW": true, "AS": true, "SELECT": true, "FROM": true,
	"WHERE": true, "GROUP": true, "BY": true, "JOIN": true, "ON": true,
	"AND": true, "OR": true, "NOT": true, "COUNT": true, "SUM": true,
	"AVG": true, "MIN": true, "MAX": true, "MEDIAN": true, "BETWEEN": true,
	"NULL": true, "IS": true,
}

type token struct {
	kind tokKind
	text string // keywords upper-cased; identifiers verbatim
	pos  int
}

// lexer tokenizes the input.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src fully, returning an error with position on bad input.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent()
		case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) emit(t token) { l.toks = append(l.toks, t) }

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			// SQL line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		l.pos++
	}
}

func isIdentStart(c rune) bool {
	return unicode.IsLetter(c) || c == '_'
}

func isIdentPart(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '.'
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	text := l.src[start:l.pos]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		l.emit(token{kind: tokKeyword, text: upper, pos: start})
		return
	}
	l.emit(token{kind: tokIdent, text: text, pos: start})
}

func (l *lexer) lexNumber() error {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' {
			if seenDot {
				return fmt.Errorf("svcql: malformed number at %d", start)
			}
			seenDot = true
			l.pos++
			continue
		}
		if !unicode.IsDigit(rune(c)) {
			break
		}
		l.pos++
	}
	l.emit(token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'') // escaped quote
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("svcql: unterminated string at %d", start)
}

// twoCharSymbols are the multi-byte operators.
var twoCharSymbols = map[string]bool{"<=": true, ">=": true, "<>": true, "!=": true}

func (l *lexer) lexSymbol() error {
	if l.pos+1 < len(l.src) && twoCharSymbols[l.src[l.pos:l.pos+2]] {
		l.emit(token{kind: tokSymbol, text: l.src[l.pos : l.pos+2], pos: l.pos})
		l.pos += 2
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '*', '+', '-', '/', '=', '<', '>':
		l.emit(token{kind: tokSymbol, text: string(c), pos: l.pos})
		l.pos++
		return nil
	}
	return fmt.Errorf("svcql: unexpected character %q at %d", c, l.pos)
}
