package relation

import "sync"

// Dict is a string dictionary backing dictionary-encoded string vectors: a
// dense code → string table plus the reverse index used to intern. A
// dict-encoded ColVec stores one int64 code per cell instead of a 16-byte
// string header, so repeated values (flags, statuses, priorities — the
// low-cardinality string columns of analytic schemas) are stored once, and
// equality between cells of the same dictionary is an integer comparison.
//
// Dictionaries are owned by the structure that interns into them (a ColSet
// accumulating breaker-side rows) and are recycled through a pool exactly
// like batches and scratch vectors. Vectors produced by GatherFrom/CopyFrom
// share the owner's dictionary by pointer; the owner must outlive every
// sharing vector, which the pipeline guarantees by releasing a ColSet only
// after its consumers are done (emitted batches decode dict cells to plain
// strings, so nothing downstream ever aliases a pooled dictionary).
//
// A Dict is not safe for concurrent interning; concurrent readers (At) of a
// dictionary that is no longer growing are fine.
type Dict struct {
	strs  []string
	index map[string]int32
}

// Len reports the number of distinct interned strings.
func (d *Dict) Len() int { return len(d.strs) }

// At returns the string for code (codes are dense, starting at 0).
func (d *Dict) At(code int64) string { return d.strs[code] }

// Intern returns the code for s, assigning the next code on first sight.
func (d *Dict) Intern(s string) int64 {
	if c, ok := d.index[s]; ok {
		return int64(c)
	}
	c := int32(len(d.strs))
	d.strs = append(d.strs, s)
	if d.index == nil {
		d.index = make(map[string]int32)
	}
	d.index[s] = c
	return int64(c)
}

// Reset empties the dictionary, keeping capacity for reuse.
func (d *Dict) Reset() {
	if poisonRecycled.Load() {
		for i := range d.strs {
			d.strs[i] = PoisonString
		}
	}
	d.strs = d.strs[:0]
	clear(d.index)
}

// dictPool recycles dictionaries across pipeline drains, like vecPool.
var dictPool = sync.Pool{New: func() any {
	poolCounters.dictNews.Add(1)
	return new(Dict)
}}

// GetDict returns an empty dictionary from the pool.
func GetDict() *Dict {
	poolCounters.dictGets.Add(1)
	d := dictPool.Get().(*Dict)
	d.Reset()
	return d
}

// PutDict returns a dictionary to the pool. The caller must ensure no
// vector still references it (see Dict).
func PutDict(d *Dict) {
	d.Reset()
	dictPool.Put(d)
}
