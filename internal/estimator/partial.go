package estimator

import (
	"fmt"
	"math"

	"github.com/sampleclean/svc/internal/clean"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/stats"
)

// Partial is the mergeable sufficient-statistics form of a CLT estimate.
//
// The SVC estimators for sum and count are sums of per-row terms — trans
// values for SVC+AQP (Section 5.2.1), correspondence differences for
// SVC+CORR (Definition 4) — with Horvitz–Thompson plug-in variance
// (1−m)·Σ term². Both the point estimate and the variance are therefore
// algebraically composable across any disjoint partition of the view
// keys: partial sums add, partial sums-of-squares add, and the stale
// baseline (a sum over the partitioned stale view) adds. A fleet of
// shards each holding a hash partition of the view can answer one query
// with a single statistically-correct global confidence interval by
// exchanging Partials instead of estimates.
//
// avg is handled as the ratio of a sum statistic and a count statistic,
// each composed independently, with the interval recombined in
// quadrature (ratioHalfWidth) — ratios do not decompose into per-row
// sums, but their numerator and denominator do.
//
// min/max/median/percentile are not mergeable in this form (extremes
// lose their tail bound under composition, quantiles are not sums);
// PartialAQP and PartialCorr reject them.
type Partial struct {
	// Agg is the query's aggregate (SumQ, CountQ, or AvgQ).
	Agg Agg
	// Method names the estimator the statistics belong to ("svc+aqp" or
	// "svc+corr"). Partials of different methods do not merge.
	Method string
	// Ratio is the Bernoulli sampling ratio m. All merged partials must
	// share it (shards are configured identically).
	Ratio float64

	// Primary statistic: the trans/diff moments of the sum or count
	// query (for avg, of the sum numerator). K counts the rows behind
	// it; Stale is the shard's exact stale answer q(S) (0 for AQP);
	// Sum and SumSq are Σ term and Σ term².
	K     int
	Stale float64
	Sum   float64
	SumSq float64

	// Denominator statistic, set only for Agg == AvgQ: the count query's
	// moments, composed the same way and recombined as sum/count.
	CntK     int
	CntStale float64
	CntSum   float64
	CntSumSq float64
}

// mergeable reports why a partial cannot merge with p, or nil.
func (p Partial) mergeable(o Partial) error {
	if p.Agg != o.Agg {
		return fmt.Errorf("estimator: cannot merge partials of different aggregates (%v vs %v)", p.Agg, o.Agg)
	}
	if p.Method != o.Method {
		return fmt.Errorf("estimator: cannot merge partials of different methods (%s vs %s)", p.Method, o.Method)
	}
	if p.Ratio != o.Ratio {
		return fmt.Errorf("estimator: cannot merge partials with different sampling ratios (%g vs %g)", p.Ratio, o.Ratio)
	}
	return nil
}

// MergePartials composes per-shard partials into one: sums add, variance
// terms add, stale baselines add. It requires at least one partial and a
// consistent (Agg, Method, Ratio) across all of them. Empty-shard
// partials (zero rows) are valid identities.
func MergePartials(ps ...Partial) (Partial, error) {
	if len(ps) == 0 {
		return Partial{}, fmt.Errorf("estimator: no partials to merge")
	}
	out := ps[0]
	for _, p := range ps[1:] {
		if err := out.mergeable(p); err != nil {
			return Partial{}, err
		}
		out.K += p.K
		out.Stale += p.Stale
		out.Sum += p.Sum
		out.SumSq += p.SumSq
		out.CntK += p.CntK
		out.CntStale += p.CntStale
		out.CntSum += p.CntSum
		out.CntSumSq += p.CntSumSq
	}
	return out, nil
}

// cltEstimate finalizes one composed sum/count statistic: value is the
// (stale-baseline-shifted) sum, the interval is the Horvitz–Thompson CLT
// half-width gamma·sqrt((1−m)·Σ term²) — identical to aqpCLT/corrCLT on
// the unpartitioned sample.
func cltEstimate(stale, sum, sumsq float64, k int, ratio, confidence float64, method string) Estimate {
	value := stale + sum
	half := 0.0
	if k > 0 {
		half = stats.GammaForConfidence(confidence) * math.Sqrt((1-ratio)*sumsq)
	}
	return Estimate{
		Value: value, Lo: value - half, Hi: value + half,
		Confidence: confidence, Method: method, K: k,
	}
}

// Finalize turns a (possibly merged) partial into an estimate at the
// given confidence. For avg, the sum and count statistics recombine as a
// ratio with their relative half-widths composed in quadrature.
func (p Partial) Finalize(confidence float64) (Estimate, error) {
	switch p.Agg {
	case SumQ, CountQ:
		return cltEstimate(p.Stale, p.Sum, p.SumSq, p.K, p.Ratio, confidence, p.Method), nil
	case AvgQ:
		sumEst := cltEstimate(p.Stale, p.Sum, p.SumSq, p.K, p.Ratio, confidence, p.Method)
		cntEst := cltEstimate(p.CntStale, p.CntSum, p.CntSumSq, p.CntK, p.Ratio, confidence, p.Method)
		if cntEst.Value == 0 {
			return Estimate{}, fmt.Errorf("estimator: zero estimated count for avg")
		}
		v := sumEst.Value / cntEst.Value
		half := ratioHalfWidth(v, sumEst, cntEst)
		return Estimate{
			Value: v, Lo: v - half, Hi: v + half,
			Confidence: confidence, Method: p.Method, K: p.K,
		}, nil
	default:
		return Estimate{}, fmt.Errorf("estimator: aggregate %v is not mergeable", p.Agg)
	}
}

// Mergeable reports whether the aggregate has a partial form.
func Mergeable(agg Agg) bool {
	return agg == SumQ || agg == CountQ || agg == AvgQ
}

// aqpMoments accumulates the trans-table moments of one sum/count query.
func aqpMoments(s *clean.Samples, q Query) (k int, sum, sumsq float64, err error) {
	trans, err := transTable(s.Fresh, q, s.Ratio)
	if err != nil {
		return 0, 0, 0, err
	}
	for _, r := range trans {
		sum += r.val
		sumsq += r.val * r.val
	}
	return len(trans), sum, sumsq, nil
}

// PartialAQP computes the mergeable SVC+AQP statistics of one shard's
// clean sample for a sum/count/avg query. avg is decomposed into its
// sum and count statistics (both HT-scaled, so the 1/m factors cancel
// in the final ratio).
func PartialAQP(s *clean.Samples, q Query) (Partial, error) {
	p := Partial{Agg: q.Agg, Method: "svc+aqp", Ratio: s.Ratio}
	switch q.Agg {
	case SumQ, CountQ:
		k, sum, sumsq, err := aqpMoments(s, q)
		if err != nil {
			return Partial{}, err
		}
		p.K, p.Sum, p.SumSq = k, sum, sumsq
		return p, nil
	case AvgQ:
		k, sum, sumsq, err := aqpMoments(s, Query{Agg: SumQ, Attr: q.Attr, Pred: q.Pred})
		if err != nil {
			return Partial{}, err
		}
		ck, csum, csumsq, err := aqpMoments(s, Query{Agg: CountQ, Pred: q.Pred})
		if err != nil {
			return Partial{}, err
		}
		p.K, p.Sum, p.SumSq = k, sum, sumsq
		p.CntK, p.CntSum, p.CntSumSq = ck, csum, csumsq
		return p, nil
	default:
		return Partial{}, fmt.Errorf("estimator: aggregate %v is not mergeable", q.Agg)
	}
}

// corrMoments accumulates the correspondence-difference moments of one
// sum/count query plus the shard's exact stale answer.
func corrMoments(staleView *relation.Relation, s *clean.Samples, q Query) (stale float64, k int, sum, sumsq float64, err error) {
	stale, err = RunExact(staleView, q)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	freshT, err := transTable(s.Fresh, q, s.Ratio)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	staleT, err := transTable(s.Stale, q, s.Ratio)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	for _, d := range correspondenceSubtract(freshT, staleT) {
		sum += d
		sumsq += d * d
		k++
	}
	return stale, k, sum, sumsq, nil
}

// PartialCorr computes the mergeable SVC+CORR statistics of one shard:
// the exact local stale answer plus the correction's moments. avg is
// decomposed into corrected sum and corrected count (the sharded avg is
// their ratio with a quadrature interval, not the single-process
// bootstrap — see DESIGN.md "Sharded serving tier").
func PartialCorr(staleView *relation.Relation, s *clean.Samples, q Query) (Partial, error) {
	p := Partial{Agg: q.Agg, Method: "svc+corr", Ratio: s.Ratio}
	switch q.Agg {
	case SumQ, CountQ:
		stale, k, sum, sumsq, err := corrMoments(staleView, s, q)
		if err != nil {
			return Partial{}, err
		}
		p.Stale, p.K, p.Sum, p.SumSq = stale, k, sum, sumsq
		return p, nil
	case AvgQ:
		stale, k, sum, sumsq, err := corrMoments(staleView, s, Query{Agg: SumQ, Attr: q.Attr, Pred: q.Pred})
		if err != nil {
			return Partial{}, err
		}
		cstale, ck, csum, csumsq, err := corrMoments(staleView, s, Query{Agg: CountQ, Pred: q.Pred})
		if err != nil {
			return Partial{}, err
		}
		p.Stale, p.K, p.Sum, p.SumSq = stale, k, sum, sumsq
		p.CntStale, p.CntK, p.CntSum, p.CntSumSq = cstale, ck, csum, csumsq
		return p, nil
	default:
		return Partial{}, fmt.Errorf("estimator: aggregate %v is not mergeable", q.Agg)
	}
}

// GroupPartialResult holds per-group partials keyed by the encoded group
// values, plus printable labels — the mergeable form of GroupResult.
type GroupPartialResult struct {
	Groups map[string]Partial
	Labels map[string]string
}

// GroupPartialAQP computes per-group SVC+AQP partials. Groups absent
// from the shard's sample produce no entry; merging unions group keys,
// so a group that exists on only one shard survives composition.
func GroupPartialAQP(s *clean.Samples, q Query, groupBy []string) (GroupPartialResult, error) {
	parts, labels, err := groupPartition(s.Fresh, groupBy)
	if err != nil {
		return GroupPartialResult{}, err
	}
	res := GroupPartialResult{Groups: map[string]Partial{}, Labels: labels}
	for k, rows := range parts {
		sub := &clean.Samples{Fresh: subRelation(s.Fresh, rows), Stale: s.Stale, Ratio: s.Ratio}
		p, err := PartialAQP(sub, q)
		if err != nil {
			return GroupPartialResult{}, err
		}
		res.Groups[k] = p
	}
	return res, nil
}

// GroupPartialCorr computes per-group SVC+CORR partials over the union
// of group keys present in the shard's stale view and samples.
func GroupPartialCorr(staleView *relation.Relation, s *clean.Samples, q Query, groupBy []string) (GroupPartialResult, error) {
	staleParts, staleLabels, err := groupPartition(staleView, groupBy)
	if err != nil {
		return GroupPartialResult{}, err
	}
	freshParts, freshLabels, err := groupPartition(s.Fresh, groupBy)
	if err != nil {
		return GroupPartialResult{}, err
	}
	sampleStaleParts, sampleStaleLabels, err := groupPartition(s.Stale, groupBy)
	if err != nil {
		return GroupPartialResult{}, err
	}
	keys := map[string]bool{}
	labels := map[string]string{}
	note := func(parts map[string][]relation.Row, lbl map[string]string) {
		for k := range parts {
			keys[k] = true
			if _, ok := labels[k]; !ok {
				labels[k] = lbl[k]
			}
		}
	}
	note(staleParts, staleLabels)
	note(freshParts, freshLabels)
	note(sampleStaleParts, sampleStaleLabels)
	res := GroupPartialResult{Groups: map[string]Partial{}, Labels: labels}
	for k := range keys {
		sub := &clean.Samples{
			Fresh: subRelation(s.Fresh, freshParts[k]),
			Stale: subRelation(s.Stale, sampleStaleParts[k]),
			Ratio: s.Ratio,
		}
		p, err := PartialCorr(subRelation(staleView, staleParts[k]), sub, q)
		if err != nil {
			return GroupPartialResult{}, err
		}
		res.Groups[k] = p
	}
	return res, nil
}

// MergeGroupPartials composes per-shard group partials by group key:
// keys union, and a key present on several shards merges its partials.
func MergeGroupPartials(rs ...GroupPartialResult) (GroupPartialResult, error) {
	out := GroupPartialResult{Groups: map[string]Partial{}, Labels: map[string]string{}}
	for _, r := range rs {
		for k, p := range r.Groups {
			if prev, ok := out.Groups[k]; ok {
				merged, err := MergePartials(prev, p)
				if err != nil {
					return GroupPartialResult{}, err
				}
				out.Groups[k] = merged
			} else {
				out.Groups[k] = p
			}
		}
		for k, l := range r.Labels {
			if _, ok := out.Labels[k]; !ok {
				out.Labels[k] = l
			}
		}
	}
	return out, nil
}

// Finalize turns every group's partial into an estimate. Groups whose
// finalization fails (e.g. zero estimated count for avg) are dropped,
// matching GroupAQP/GroupCorr's skip of unusable groups.
func (r GroupPartialResult) Finalize(confidence float64) (GroupResult, error) {
	out := GroupResult{Groups: map[string]Estimate{}, Labels: r.Labels}
	for k, p := range r.Groups {
		est, err := p.Finalize(confidence)
		if err != nil {
			continue
		}
		out.Groups[k] = est
	}
	return out, nil
}
