// Package tpcd implements the paper's synthetic workload (Section 7.1): a
// scaled-down TPC-D-like schema with the TPCD-Skew generator's Zipfian
// skew knob (Chaudhuri & Narasayya), the update workload (insertions and
// updates to lineitem and orders only, per the TPC-D refresh model the
// paper uses), the materialized views of Section 7 (the lineitem⋈orders
// join view, the ten "complex" views V3..V22, and the Section 7.6.1 data
// cube), the random query generator of Section 7.1, and svcql texts for
// the views and Figure 5 queries expressible in the dialect (sql.go).
//
// The absolute scale is configurable; experiments run at laptop scale and
// reproduce the paper's ratios, not its absolute numbers.
//
// Concurrency contract: a Generator owns RNG state and is single-threaded
// — generate (and stage update batches) from one goroutine. The view
// definitions, query lists, and SQL texts are immutable values, safe to
// share; generated databases follow package db's snapshot contract.
package tpcd
