// Package algebra implements the relational algebra of the paper's Section
// 3.1 as composable expression trees: Select σ, generalized Project Π, Join
// ⋈ (inner and outer, with merged join columns), Aggregate γ, Union,
// Intersection, Difference, Alias, and the hash-sampling operator η
// (Section 4.4).
//
// Every node derives a primary key for its output following Definition 2
// (primary key generation), which is what makes rows of derived relations
// identifiable — the foundation for provenance, sampling, and the
// correspondence between stale and cleaned samples.
//
// The push-down rewriter (PushDownHash) implements Definition 3, including
// the foreign-key-join and equality-join special cases; Theorem 1 (the
// rewritten plan materializes the identical sample) is enforced by property
// tests. PushDownScans is the complementary evaluation-time rewrite: it
// fuses selections and projections into base scans for the batched
// pipeline (see pipeline.go and DESIGN.md "Batch pipeline execution").
//
// Evaluation is columnar end-to-end where the plan shape allows it
// (DESIGN.md "Columnar batch layer"): fused chains stream typed column
// vectors; equality joins build and probe hash tables directly over
// columnar row stores and emit columnar output batches (vecjoin.go);
// aggregations over columnar-yielding children fold group-by state
// straight off the vectors, morsel-parallel above the worker threshold
// (vecagg.go). Row-at-a-time execution remains the specification — the
// columnar paths are held row-for-row equal to it by property tests —
// and the fallback for shapes the vectorizer does not cover
// (Context.NoColumnar forces it engine-wide).
//
// For multi-view maintenance cycles, fingerprint.go + cached.go add
// cross-plan subplan sharing: Fingerprint canonically encodes a
// scan/select/project/join subtree, SubplanCache memoizes its pooled
// columnar result keyed on (fingerprint, catalog epoch), and CachedNode
// splices the cached ColSet back into any consumer plan. CacheSubplans
// wraps the cacheable frontier of a maintenance plan so K views sharing
// delta scans evaluate them once per cycle (DESIGN.md "Multi-view
// maintenance optimizer"). The cache is mutex-guarded and verifies the
// canonical encoding on every hit, so a 64-bit collision degrades to a
// miss, never a wrong answer; epoch mismatches refuse at construction.
//
// Concurrency contract: Node trees are immutable once built — rewriters
// return new trees — so one plan may be evaluated by any number of
// goroutines simultaneously, including the bound expressions it shares
// across morsel workers. The *Context handed to an evaluation is NOT safe
// for concurrent use: it accumulates per-evaluation state (RowsTouched),
// so each concurrent evaluation needs its own Context (db.Version.Context
// hands out a fresh one per call). Intra-evaluation parallelism is opt-in
// via Context.Parallelism and is deterministic: parallel results are
// byte-identical to serial ones.
package algebra
