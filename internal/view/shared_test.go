package view_test

import (
	"fmt"
	"testing"

	"github.com/sampleclean/svc/internal/algebra"
	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/tpcd"
	"github.com/sampleclean/svc/internal/view"
)

// Shared-subplan maintenance must be pure optimization: for every view,
// MaintainAtShared with a group cache produces exactly the rows MaintainAt
// produces, for both strategies, serial and parallel, columnar on and off
// — while the group as a whole touches fewer rows than independent
// maintenance.

func sharedTestDB(t *testing.T) *db.Database {
	t.Helper()
	gen := tpcd.NewGenerator(tpcd.Config{
		Orders: 400, MaxLines: 3, Customers: 60, Suppliers: 12, Parts: 40,
		Z: 2, Days: 365, Seed: 7,
	})
	d, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.StageUpdates(d, 0.25); err != nil {
		t.Fatal(err)
	}
	return d
}

// sharedTestViews returns the Figure 4a join view plus two aggregate
// views derived from the same join — the aggregates share their entire
// delta-propagation subtrees, the join view shares the delta scans.
func sharedTestViews() []view.Definition {
	join := func() algebra.Node {
		return algebra.MustJoin(
			algebra.Scan(tpcd.Lineitem, tpcd.LineitemSchema()),
			algebra.Scan(tpcd.Orders, tpcd.OrdersSchema()),
			algebra.JoinSpec{
				Type:  algebra.Inner,
				On:    []algebra.EqPair{{Left: "l_orderkey", Right: "o_orderkey"}},
				Merge: true,
			},
		)
	}
	windowed := func() algebra.Node {
		return algebra.MustSelect(join(), expr.Lt(expr.Col("o_orderdate"), expr.IntLit(270)))
	}
	return []view.Definition{
		tpcd.JoinView(),
		{Name: "revByOrder", Plan: algebra.MustGroupBy(windowed(),
			[]string{"l_orderkey"},
			algebra.CountAs("cnt"),
			algebra.SumAs(tpcd.Revenue(), "revenue"),
		)},
		{Name: "qtyByPriority", Plan: algebra.MustGroupBy(windowed(),
			[]string{"o_orderpriority"},
			algebra.CountAs("cnt"),
			algebra.SumAs(expr.Col("l_quantity"), "totalQty"),
		)},
	}
}

func TestSharedMaintenanceEquivalence(t *testing.T) {
	d := sharedTestDB(t)
	defs := sharedTestViews()

	for _, kind := range []view.StrategyKind{view.ChangeTable, view.Recompute} {
		views := make([]*view.View, len(defs))
		maints := make([]*view.Maintainer, len(defs))
		for i, def := range defs {
			def.Name = fmt.Sprintf("%s_%s", def.Name, kind)
			v, err := view.Materialize(d, def)
			if err != nil {
				t.Fatal(err)
			}
			m, err := view.NewMaintainerWithStrategy(v, kind)
			if err != nil {
				t.Fatalf("%s: %s strategy: %v", def.Name, kind, err)
			}
			views[i] = v
			maints[i] = m
		}
		for _, par := range []int{1, 4} {
			for _, columnar := range []bool{true, false} {
				name := fmt.Sprintf("%s/par=%d/columnar=%v", kind, par, columnar)
				t.Run(name, func(t *testing.T) {
					d.SetParallelism(par)
					d.SetColumnar(columnar)
					pin := d.Pin()

					// Independent: each view maintained alone.
					var indepRows int64
					indep := make([]*relation.Relation, len(views))
					for i, m := range maints {
						out, stats, err := m.MaintainAt(pin, views[i].Data())
						if err != nil {
							t.Fatal(err)
						}
						indepRows += stats.RowsTouched
						indep[i] = out
					}

					// Shared: the same cycle with one group cache.
					cache := algebra.NewSubplanCache(pin.Epoch())
					defer cache.Release()
					var sharedRows int64
					for i, m := range maints {
						out, stats, err := m.MaintainAtShared(pin, views[i].Data(), cache)
						if err != nil {
							t.Fatal(err)
						}
						sharedRows += stats.RowsTouched
						out.SortByKey()
						indep[i].SortByKey()
						if !out.Equal(indep[i]) {
							t.Errorf("%s: shared maintenance diverges from independent:\nshared %v\nindep  %v",
								views[i].Name(), out, indep[i])
						}
					}
					hits, misses, saved := cache.Stats()
					if hits == 0 {
						t.Errorf("no shared-subplan hits across %d views (misses=%d)", len(views), misses)
					}
					if saved <= 0 {
						t.Errorf("rowsSaved=%d, want > 0", saved)
					}
					if sharedRows >= indepRows {
						t.Errorf("shared cycle touched %d rows, independent %d — sharing saved nothing",
							sharedRows, indepRows)
					}
				})
			}
		}
	}
}
