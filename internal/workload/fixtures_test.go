package workload

import "testing"

// TestFrozenFixturesReplay replays every committed regression fixture:
// the minimized spec must still generate byte-identically (digest match)
// and the deterministic correctness invariants must hold under the exact
// engine config that tripped the trigger. Coverage triggers themselves are
// statistical observations — what the fixture pins is the reproducible
// scenario, so a generator or estimator change that invalidates it fails
// loudly here instead of silently drifting the dashboard.
func TestFrozenFixturesReplay(t *testing.T) {
	fixtures, err := LoadFixtures("fixtures")
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) == 0 {
		t.Fatal("no frozen fixtures committed under internal/workload/fixtures/ — run `svcbench -run matrix` and commit the output")
	}
	for _, fx := range fixtures {
		fx := fx
		t.Run(fx.Name, func(t *testing.T) {
			t.Parallel()
			got, err := Digest(fx.Spec)
			if err != nil {
				t.Fatal(err)
			}
			if got != fx.Digest {
				t.Fatalf("fixture digest drifted:\n got  %s\n want %s\n(generator changed — regenerate fixtures with `svcbench -run matrix`)", got, fx.Digest)
			}
			cfg, err := fx.Config()
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckInvariants(fx.Spec, cfg, fx.Confidence); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFixtureTriggerStillFires re-runs the frozen cell for each fixture
// and asserts the recorded trigger still fires — the fixture is a live
// regression witness, not a stale artifact. The salted trial schedule is a
// pure function of (spec, config), so this is deterministic.
func TestFixtureTriggerStillFires(t *testing.T) {
	if testing.Short() {
		t.Skip("replaying full cells is not short-mode work")
	}
	fixtures, err := LoadFixtures("fixtures")
	if err != nil {
		t.Fatal(err)
	}
	for _, fx := range fixtures {
		fx := fx
		t.Run(fx.Name, func(t *testing.T) {
			t.Parallel()
			cfg, err := fx.Config()
			if err != nil {
				t.Fatal(err)
			}
			opts := Options{Trials: fx.Trials, Confidence: fx.Confidence}.withDefaults()
			if !stillFails(fx.Spec, cfg, fx.Estimator, fx.Trigger, opts) {
				t.Fatalf("frozen trigger %s no longer fires for %s under %s — estimator behavior changed; regenerate fixtures",
					fx.Trigger, fx.Estimator, cfg.Label())
			}
		})
	}
}
