package svc

import (
	"github.com/sampleclean/svc/internal/algebra"
	"github.com/sampleclean/svc/internal/clean"
	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/estimator"
	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/hashing"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/view"
)

// This file re-exports the engine's vocabulary so applications need a
// single import. The functional core lives in internal/ packages; see
// DESIGN.md for the module map.

// ---------------------------------------------------------------- data

type (
	// Database is a catalog of primary-keyed tables with staged delta
	// relations (the paper's D and ∂D).
	Database = db.Database
	// Table is one base relation plus its staged insertions ΔR and
	// deletions ∇R.
	Table = db.Table
	// Schema describes a relation's columns and primary key.
	Schema = relation.Schema
	// Column is one attribute of a schema.
	Column = relation.Column
	// Row is one tuple.
	Row = relation.Row
	// Value is a dynamically typed scalar (NULL, int, float, string,
	// bool).
	Value = relation.Value
	// Kind enumerates value types.
	Kind = relation.Kind
	// Relation is an in-memory table.
	Relation = relation.Relation
	// KeyBuf is a reusable buffer for composite-key encodings — the
	// zero-allocation entry point to encoded-key lookups
	// (Relation.GetByEncodedBytes, Relation.ProbeBytes).
	KeyBuf = relation.KeyBuf
)

// Value kinds.
const (
	KindNull   = relation.KindNull
	KindInt    = relation.KindInt
	KindFloat  = relation.KindFloat
	KindString = relation.KindString
	KindBool   = relation.KindBool
)

// NewDatabase creates an empty database.
func NewDatabase() *Database { return db.New() }

// NewSchema builds a schema from columns and primary-key names.
func NewSchema(cols []Column, key ...string) Schema { return relation.NewSchema(cols, key...) }

// Col builds a column.
func Col(name string, kind Kind) Column { return Column{Name: name, Type: kind} }

// Scalar constructors.
var (
	// Null returns the NULL value.
	Null = relation.Null
	// Int returns an integer value.
	Int = relation.Int
	// Float returns a floating-point value.
	Float = relation.Float
	// Str returns a string value.
	Str = relation.String
	// Bool returns a boolean value.
	Bool = relation.Bool
)

// ---------------------------------------------------------------- plans

type (
	// Node is one operator of a view-definition plan.
	Node = algebra.Node
	// JoinSpec configures a join.
	JoinSpec = algebra.JoinSpec
	// EqPair equates a left and a right join column.
	EqPair = algebra.EqPair
	// JoinType selects inner/left/right/full.
	JoinType = algebra.JoinType
	// AggSpec is one aggregate output of a group-by.
	AggSpec = algebra.AggSpec
	// Output is one column of a generalized projection.
	Output = algebra.Output
)

// Join types.
const (
	Inner      = algebra.Inner
	LeftOuter  = algebra.LeftOuter
	RightOuter = algebra.RightOuter
	FullOuter  = algebra.FullOuter
)

// Plan constructors (see package algebra for the error-returning forms).
var (
	// Scan reads a named base table.
	Scan = algebra.Scan
	// SelectWhere filters rows (σ).
	SelectWhere = algebra.MustSelect
	// Project computes a generalized projection (Π), deriving the key by
	// Definition 2.
	Project = algebra.MustProject
	// ProjectKeyed is Project with an explicitly asserted output key.
	ProjectKeyed = algebra.MustProjectKeyed
	// Join joins two plans (⋈).
	Join = algebra.MustJoin
	// GroupByAgg aggregates grouped rows (γ).
	GroupByAgg = algebra.MustGroupBy
	// UnionAll unions two plans (set semantics when keyed, bag
	// otherwise).
	UnionAll = algebra.MustUnion
	// IntersectOp intersects two plans.
	IntersectOp = algebra.MustIntersect
	// DifferenceOp subtracts one plan from another.
	DifferenceOp = algebra.MustDifference
	// AliasAs prefixes all column names (disambiguation before joins).
	AliasAs = algebra.Alias
	// On is shorthand for a single-pair join condition.
	On = algebra.On
	// OutCol is a pass-through projection column.
	OutCol = algebra.OutCol
	// Out names a computed projection column.
	Out = algebra.Out
	// CountAs / SumAs / AvgAs / MinAs / MaxAs build aggregate specs.
	CountAs = algebra.CountAs
	SumAs   = algebra.SumAs
	AvgAs   = algebra.AvgAs
	MinAs   = algebra.MinAs
	MaxAs   = algebra.MaxAs
	// FormatPlan renders an expression tree for inspection.
	FormatPlan = algebra.Format
)

// ---------------------------------------------------------------- exprs

// Expr is a scalar expression over rows (predicates, projections).
type Expr = expr.Expr

// Expression constructors.
var (
	ColRef    = expr.Col
	Lit       = expr.Lit
	IntLit    = expr.IntLit
	FloatLit  = expr.FloatLit
	StringLit = expr.StringLit
	Add       = expr.Add
	SubE      = expr.Sub
	MulE      = expr.Mul
	DivE      = expr.Div
	Eq        = expr.Eq
	Ne        = expr.Ne
	Lt        = expr.Lt
	Le        = expr.Le
	Gt        = expr.Gt
	Ge        = expr.Ge
	And       = expr.And
	Or        = expr.Or
	Not       = expr.Not
	Coalesce  = expr.Coalesce
	IsNull    = expr.IsNull
	If        = expr.If
	FuncE     = expr.Func
	Between   = expr.Between
)

// ---------------------------------------------------------------- views

type (
	// ViewDefinition names a view and its defining plan.
	ViewDefinition = view.Definition
	// View is a materialized view.
	View = view.View
	// ViewMaintainer owns a view's maintenance strategy M(S, D, ∂D).
	ViewMaintainer = view.Maintainer
	// ViewCleaner owns the sampled cleaning expression and the
	// persistent sample view.
	ViewCleaner = clean.Cleaner
	// Samples is the corresponding sample pair (Ŝ, Ŝ′).
	Samples = clean.Samples
)

// Materialize evaluates a view definition over the database.
var Materialize = view.Materialize

// NewMaintainer builds the maintenance strategy for a view.
var NewMaintainer = view.NewMaintainer

// NewCleaner builds a sampled cleaner at ratio m (nil hasher = default).
var NewCleaner = clean.New

// ---------------------------------------------------------------- queries

type (
	// Query is an aggregate query over the view.
	Query = estimator.Query
	// Estimate is an approximate answer with uncertainty.
	Estimate = estimator.Estimate
	// GroupResult holds per-group estimates.
	GroupResult = estimator.GroupResult
	// SelectResult is a cleaned SELECT answer (Appendix 12.1.2).
	SelectResult = estimator.SelectResult
)

// Query constructors.
var (
	SumQ        = estimator.Sum
	CountQ      = estimator.Count
	AvgQ        = estimator.Avg
	MedianQ     = estimator.Median
	PercentileQ = estimator.Percentile
	MinQ        = estimator.Min
	MaxQ        = estimator.Max
	// RelativeError is the evaluation metric |est−truth|/|truth|.
	RelativeError = estimator.RelativeError
)

// Sum returns SELECT sum(attr) WHERE pred (pred may be nil).
func Sum(attr string, pred Expr) Query { return estimator.Sum(attr, pred) }

// Count returns SELECT count(1) WHERE pred.
func Count(pred Expr) Query { return estimator.Count(pred) }

// Avg returns SELECT avg(attr) WHERE pred.
func Avg(attr string, pred Expr) Query { return estimator.Avg(attr, pred) }

// Median returns SELECT median(attr) WHERE pred.
func Median(attr string, pred Expr) Query { return estimator.Median(attr, pred) }

// ---------------------------------------------------------------- hashing

// Hasher maps encoded keys to [0,1) deterministically.
type Hasher = hashing.Hasher

// Available hashers.
var (
	// FNVHasher is the default: FNV-64 with a SplitMix64 finalizer.
	FNVHasher Hasher = hashing.FNV{}
	// SHA1Hasher is the cryptographic option.
	SHA1Hasher Hasher = hashing.SHA1{}
)
